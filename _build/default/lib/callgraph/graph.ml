(* A plain directed graph over int node ids with named nodes, plus the BFS
   reachability used to measure helper call-graph footprints (Figure 3's
   metric: "the number of unique nodes in the call graph of each helper"). *)

type t = {
  mutable n_nodes : int;
  names : (int, string) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
}

let create () = { n_nodes = 0; names = Hashtbl.create 256; succs = Hashtbl.create 256 }

let add_node t ~name =
  let id = t.n_nodes in
  t.n_nodes <- t.n_nodes + 1;
  Hashtbl.replace t.names id name;
  id

let add_edge t ~src ~dst =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.succs src) in
  if not (List.mem dst cur) then Hashtbl.replace t.succs src (dst :: cur)

let succs t id = Option.value ~default:[] (Hashtbl.find_opt t.succs id)
let name t id = Option.value ~default:"?" (Hashtbl.find_opt t.names id)
let node_count t = t.n_nodes

let edge_count t = Hashtbl.fold (fun _ l acc -> acc + List.length l) t.succs 0

(* Unique nodes reachable from [root], counting the root itself. *)
let reachable_count t root =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.add root queue;
  Hashtbl.replace seen root ();
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
        if not (Hashtbl.mem seen w) then begin
          Hashtbl.replace seen w ();
          Queue.add w queue
        end)
      (succs t v)
  done;
  Hashtbl.length seen
