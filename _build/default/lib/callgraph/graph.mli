(** A plain directed graph over integer node ids with the BFS reachability
    measurement behind Figure 3 ("the number of unique nodes in the call
    graph of each helper"). *)

type t = {
  mutable n_nodes : int;
  names : (int, string) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
}

val create : unit -> t

val add_node : t -> name:string -> int
(** Returns the fresh node's id. *)

val add_edge : t -> src:int -> dst:int -> unit
(** Idempotent: parallel edges are not recorded twice. *)

val succs : t -> int -> int list
val name : t -> int -> string
val node_count : t -> int
val edge_count : t -> int

val reachable_count : t -> int -> int
(** Unique nodes reachable from the given root, counting the root. *)
