(** The synthetic-but-calibrated Linux-5.18 call graph behind Figure 3.

    Generation is deterministic; implemented helpers are pinned to their
    registry node counts (including the paper's exact extremes: 1 for
    bpf_get_current_pid_tgid, 4845 for bpf_sys_bpf) and the remaining
    helpers fill the aggregate buckets so that measurement reproduces the
    paper's 52.2% / 34.5% shares.  See DESIGN.md "Fidelity notes". *)

val census : int
(** 249: the paper's Linux-5.18 helper census. *)

val target_ge30_share : float
val target_ge500_share : float

type built = {
  graph : Graph.t;
  helper_roots : (string * int) list; (** helper name -> root node id *)
}

val build : unit -> built
(** Deterministic: equal results on every call. *)
