(* Figure 3's measurement: BFS from every helper root, then distribution
   statistics over the per-helper call-graph footprints. *)

type measurement = { helper : string; nodes : int }

type distribution = {
  measurements : measurement list; (* sorted by nodes, ascending *)
  n : int;
  min_nodes : int;
  max_nodes : int;
  median : int;
  mean : float;
  share_ge30 : float;
  share_ge500 : float;
}

let measure (built : Kernel_graph.built) : distribution =
  let measurements =
    List.map
      (fun (helper, root) ->
        { helper; nodes = Graph.reachable_count built.Kernel_graph.graph root })
      built.Kernel_graph.helper_roots
    |> List.sort (fun a b -> compare a.nodes b.nodes)
  in
  let n = List.length measurements in
  let nodes = List.map (fun m -> m.nodes) measurements in
  let share p = float_of_int (List.length (List.filter p nodes)) /. float_of_int n in
  {
    measurements;
    n;
    min_nodes = List.fold_left min max_int nodes;
    max_nodes = List.fold_left max 0 nodes;
    median = List.nth nodes (n / 2);
    mean = float_of_int (List.fold_left ( + ) 0 nodes) /. float_of_int n;
    share_ge30 = share (fun x -> x >= 30);
    share_ge500 = share (fun x -> x >= 500);
  }

let find d helper = List.find_opt (fun m -> String.equal m.helper helper) d.measurements

(* Log-scale histogram buckets (the shape of the paper's scatter): bucket i
   holds helpers with nodes in [10^i, 10^(i+1)). *)
let log_histogram d =
  let buckets = Array.make 5 0 in
  List.iter
    (fun m ->
      let b =
        if m.nodes < 10 then 0
        else if m.nodes < 100 then 1
        else if m.nodes < 1000 then 2
        else if m.nodes < 10000 then 3
        else 4
      in
      buckets.(b) <- buckets.(b) + 1)
    d.measurements;
  buckets
