lib/maps/ringbuf.mli: Bytes Hashtbl Kernel_sim
