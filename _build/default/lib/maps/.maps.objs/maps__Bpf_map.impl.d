lib/maps/bpf_map.ml: Array Bytes Char Hashtbl Kernel_sim List Printf Ringbuf String
