lib/maps/ringbuf.ml: Hashtbl Kernel_sim List
