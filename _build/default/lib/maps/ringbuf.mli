(** The BPF ring buffer (bpf_ringbuf_* helper family).

    Reservations hand the program real simulated kernel memory; they must
    be completed by submit or discard.  Completed records are remembered so
    a double completion is distinguishable ([Already_completed]) — the
    hook for the Table 1 use-after-free demo. *)

type record = { offset : int; size : int; mutable committed : bool }

type t = {
  mem : Kernel_sim.Kmem.t;
  backing : Kernel_sim.Kmem.region;
  capacity : int;
  mutable head : int;
  mutable reservations : (int64, record) Hashtbl.t;
  mutable completed : (int64, record) Hashtbl.t;
  mutable submitted : (int * int) list;
}

val create : Kernel_sim.Kmem.t -> capacity:int -> t

val reserve : t -> size:int -> int64 option
(** The reserved chunk's data address, or [None] when it does not fit. *)

type complete_error = Not_reserved | Already_completed

val submit : t -> int64 -> (unit, complete_error) result
val discard : t -> int64 -> (unit, complete_error) result

val consume : t -> Bytes.t list
(** Drain submitted records, oldest first (the userspace consumer). *)

val outstanding_reservations : t -> int64 list
(** Reservations never completed — kernel memory leaks in waiting. *)

val pending_records : t -> int
