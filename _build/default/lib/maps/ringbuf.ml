module Kmem = Kernel_sim.Kmem

(* BPF ring buffer (the bpf_ringbuf_* helper family).

   Reservations hand the program a chunk of real simulated kernel memory;
   submit/discard completes them.  A reservation that is never completed is
   a kernel memory leak — exactly the verifier-tracked resource the paper
   says must instead be handled by RAII (rustlite wraps reservations in a
   Resource whose destructor discards). *)

type record = { offset : int; size : int; mutable committed : bool }

type t = {
  mem : Kmem.t;
  backing : Kmem.region;
  capacity : int;
  mutable head : int; (* producer offset *)
  mutable reservations : (int64, record) Hashtbl.t; (* data addr -> record *)
  mutable completed : (int64, record) Hashtbl.t;     (* for double-free detection *)
  mutable submitted : (int * int) list; (* (offset, size), oldest last *)
}

let header_size = 8

let create mem ~capacity =
  let backing = Kmem.alloc mem ~size:capacity ~kind:"ringbuf" ~name:"bpf_ringbuf" () in
  { mem; backing; capacity; head = 0; reservations = Hashtbl.create 8;
    completed = Hashtbl.create 8; submitted = [] }

let bytes_in_flight t =
  Hashtbl.fold (fun _ r acc -> acc + r.size + header_size) t.reservations 0
  + List.fold_left (fun acc (_, sz) -> acc + sz + header_size) 0 t.submitted

let reserve t ~size =
  if size <= 0 || size + header_size + bytes_in_flight t > t.capacity
     || t.head + header_size + size > t.capacity (* no wrap in the simulation *)
  then None
  else begin
    let off = t.head in
    t.head <- t.head + header_size + size;
    let data_addr = Kmem.region_addr t.backing (off + header_size) in
    Hashtbl.replace t.reservations data_addr { offset = off; size; committed = false };
    Some data_addr
  end

type complete_error = Not_reserved | Already_completed

let complete t addr ~submit =
  match Hashtbl.find_opt t.reservations addr with
  | None ->
    if Hashtbl.mem t.completed addr then Error Already_completed else Error Not_reserved
  | Some r ->
    r.committed <- true;
    Hashtbl.remove t.reservations addr;
    Hashtbl.replace t.completed addr r;
    if submit then t.submitted <- (r.offset, r.size) :: t.submitted;
    Ok ()

let submit t addr = complete t addr ~submit:true
let discard t addr = complete t addr ~submit:false

(* Consumer side: drain submitted records, oldest first. *)
let consume t =
  let records = List.rev t.submitted in
  t.submitted <- [];
  (* compact: if nothing is reserved, the buffer can be reused from 0 *)
  if Hashtbl.length t.reservations = 0 then t.head <- 0;
  List.map
    (fun (off, size) ->
      Kmem.load_bytes t.mem ~addr:(Kmem.region_addr t.backing (off + header_size)) ~len:size
        ~context:"ringbuf_consume")
    records

let outstanding_reservations t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.reservations []

let pending_records t = List.length t.submitted
