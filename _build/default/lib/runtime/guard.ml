(* The lightweight runtime protection mechanisms of §3.1: watchdog/fuel
   termination, stack protection, and — crucially — safe termination that
   releases acquired kernel resources by running the *recorded* destructor
   list instead of unwinding the stack (no user-defined Drop code runs, no
   allocation is needed, and failures during unwinding cannot happen). *)

module Vclock = Kernel_sim.Vclock
module Rcu = Kernel_sim.Rcu

type reason =
  | Fuel_exhausted          (* instruction-count watchdog *)
  | Watchdog_timeout        (* simulated wall-clock watchdog *)
  | Stack_violation         (* stack guard tripped *)
  | Language_panic of string (* rustlite panic (checked arithmetic, bounds) *)

let reason_to_string = function
  | Fuel_exhausted -> "fuel exhausted"
  | Watchdog_timeout -> "watchdog timeout"
  | Stack_violation -> "stack guard"
  | Language_panic msg -> "panic: " ^ msg

type termination = {
  reason : reason;
  cleaned_resources : int; (* destructors run by the trusted cleanup list *)
  at_ns : int64;
}

exception Terminate of reason

(* Safe termination: run the recorded destructors (LIFO), then leave any RCU
   read-side sections the program was executing under.  This is the trusted,
   cannot-fail path the paper contrasts with ABI unwinding. *)
let terminate (hctx : Helpers.Hctx.t) reason =
  let cleaned = Helpers.Resources.cleanup hctx.resources in
  let rcu = hctx.kernel.rcu in
  while Rcu.in_critical_section rcu do
    Rcu.read_unlock rcu ~context:"guard/terminate"
  done;
  { reason; cleaned_resources = cleaned; at_ns = Vclock.now hctx.kernel.clock }

let pp_termination ppf t =
  Format.fprintf ppf "terminated (%s) at t=%a, %d resources cleaned"
    (reason_to_string t.reason) Vclock.pp_duration t.at_ns t.cleaned_resources
