lib/runtime/interp.ml: Array Ebpf Format Guard Helpers Insn Int64 Kernel_sim Printf Program
