lib/runtime/guard.ml: Format Helpers Kernel_sim
