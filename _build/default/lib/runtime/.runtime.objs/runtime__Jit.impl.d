lib/runtime/jit.ml: Array Ebpf Guard Helpers Insn Int64 Interp Kernel_sim Printf Program
