(* Port of Linux kernel/bpf/tnum.c (tristate numbers).
   All arithmetic is on int64 treated as unsigned 64-bit words; OCaml's
   Int64 wrap-around semantics match the kernel's u64 arithmetic. *)

type t = { value : int64; mask : int64 }

let ( &: ) = Int64.logand
let ( |: ) = Int64.logor
let ( ^: ) = Int64.logxor
let ( +: ) = Int64.add
let ( -: ) = Int64.sub
let lnot64 = Int64.lognot

let make ~value ~mask = { value = value &: lnot64 mask; mask }
let const v = { value = v; mask = 0L }
let unknown = { value = 0L; mask = -1L }
let zero = const 0L

let is_const t = Int64.equal t.mask 0L
let is_unknown t = Int64.equal t.mask (-1L)
let to_const t = if is_const t then Some t.value else None
let equal a b = Int64.equal a.value b.value && Int64.equal a.mask b.mask

(* fls64: index (1-based) of the most significant set bit, 0 if none. *)
let fls64 x =
  let rec go i = if i < 0 then 0 else if Int64.equal (Int64.shift_right_logical x i &: 1L) 1L then i + 1 else go (i - 1) in
  go 63

let range ~min ~max =
  let chi = min ^: max in
  let bits = fls64 chi in
  if bits > 63 then unknown
  else
    let delta = Int64.shift_left 1L bits -: 1L in
    make ~value:(min &: lnot64 delta) ~mask:delta

let contains t w = Int64.equal (w &: lnot64 t.mask) t.value

(* Linux tnum_in(a, b): b is a subset of a. We expose subset a b = tnum_in b a. *)
let subset a b =
  if not (Int64.equal (a.mask &: lnot64 b.mask) 0L) then false
  else Int64.equal (a.value &: lnot64 b.mask) b.value

let lshift a n = { value = Int64.shift_left a.value n; mask = Int64.shift_left a.mask n }
let rshift a n =
  { value = Int64.shift_right_logical a.value n; mask = Int64.shift_right_logical a.mask n }

let cast a ~size =
  if size >= 8 then a
  else
    let keep = Int64.shift_left 1L (size * 8) -: 1L in
    { value = a.value &: keep; mask = a.mask &: keep }

let arshift a n ~bits =
  if bits = 32 then
    let sub = cast a ~size:4 in
    (* sign-extend the 32-bit view, then shift arithmetically *)
    let sext x = Int64.shift_right (Int64.shift_left x 32) 32 in
    let v = Int64.shift_right (sext sub.value) n in
    let m = Int64.shift_right (sext sub.mask) n in
    cast (make ~value:(v &: lnot64 m) ~mask:m) ~size:4
  else
    let v = Int64.shift_right a.value n and m = Int64.shift_right a.mask n in
    make ~value:(v &: lnot64 m) ~mask:m

let add a b =
  let sm = a.mask +: b.mask in
  let sv = a.value +: b.value in
  let sigma = sm +: sv in
  let chi = sigma ^: sv in
  let mu = chi |: a.mask |: b.mask in
  make ~value:(sv &: lnot64 mu) ~mask:mu

let sub a b =
  let dv = a.value -: b.value in
  let alpha = dv +: a.mask in
  let beta = dv -: b.mask in
  let chi = alpha ^: beta in
  let mu = chi |: a.mask |: b.mask in
  make ~value:(dv &: lnot64 mu) ~mask:mu

let neg a = sub (const 0L) a

let logand a b =
  let alpha = a.value |: a.mask in
  let beta = b.value |: b.mask in
  let v = a.value &: b.value in
  { value = v; mask = alpha &: beta &: lnot64 v }

let logor a b =
  let v = a.value |: b.value in
  let mu = a.mask |: b.mask in
  { value = v; mask = mu &: lnot64 v }

let logxor a b =
  let v = a.value ^: b.value in
  let mu = a.mask |: b.mask in
  { value = v &: lnot64 mu; mask = mu }

(* Sound multiplication (Vishwanathan et al., adopted by Linux):
   decompose [a] bit by bit, accumulating partial products. *)
let mul a b =
  let acc_v = Int64.mul a.value b.value in
  let rec go a b acc_m =
    if Int64.equal a.value 0L && Int64.equal a.mask 0L then acc_m
    else
      let acc_m =
        if Int64.equal (a.value &: 1L) 1L then add acc_m { value = 0L; mask = b.mask }
        else if Int64.equal (a.mask &: 1L) 1L then
          add acc_m { value = 0L; mask = b.value |: b.mask }
        else acc_m
      in
      go (rshift a 1) (lshift b 1) acc_m
  in
  let acc_m = go a b (const 0L) in
  add (const acc_v) acc_m

let intersect a b =
  let v = a.value |: b.value in
  let mu = a.mask &: b.mask in
  make ~value:(v &: lnot64 mu) ~mask:mu

let union a b =
  (* bits known in both and agreeing stay known *)
  let known = lnot64 (a.mask |: b.mask) &: lnot64 (a.value ^: b.value) in
  make ~value:(a.value &: known) ~mask:(lnot64 known)

let is_aligned a size =
  if Int64.equal size 0L then true
  else Int64.equal ((a.value |: a.mask) &: (size -: 1L)) 0L

let subreg a = cast a ~size:4
let clear_subreg a = lshift (rshift a 32) 32
let with_subreg a subr = logor (clear_subreg a) (subreg subr)
let const_subreg a v = with_subreg a (const v)

let umin t = t.value
let umax t = t.value |: t.mask

let pp ppf t = Format.fprintf ppf "(%Lx; %Lx)" t.value t.mask

let pp_bin ppf t =
  for i = 63 downto 0 do
    let bit x = Int64.equal (Int64.shift_right_logical x i &: 1L) 1L in
    let c = if bit t.mask then 'x' else if bit t.value then '1' else '0' in
    Format.pp_print_char ppf c
  done

let to_string t = Format.asprintf "%a" pp t
