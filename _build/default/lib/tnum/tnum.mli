(** Tristate numbers ("tnums"): the abstract domain the Linux eBPF verifier
    uses to track partially-known 64-bit register values.

    A tnum [(value, mask)] represents the set of concrete 64-bit words [w]
    such that [w land (lnot mask) = value]: every bit is either known
    ([mask] bit = 0, taking the bit of [value]) or unknown ([mask] bit = 1).
    The representation invariant is [value land mask = 0].

    This module is a port of Linux [kernel/bpf/tnum.c], including the sound
    multiplication of Vishwanathan et al. (CGO'22), which the paper cites as
    one of the verification-hardening efforts that still cannot rescue the
    helper-function escape hatch. *)

type t = private { value : int64; mask : int64 }

val make : value:int64 -> mask:int64 -> t
(** [make ~value ~mask] builds a tnum, normalising so that unknown bits of
    [value] are cleared (enforces [value land mask = 0]). *)

val const : int64 -> t
(** Fully-known constant. *)

val unknown : t
(** The top element: nothing known. *)

val zero : t
(** [const 0L]. *)

val range : min:int64 -> max:int64 -> t
(** [range ~min ~max] is the best tnum containing the unsigned interval
    [[min, max]] (Linux [tnum_range]). *)

val is_const : t -> bool
val is_unknown : t -> bool
val to_const : t -> int64 option

val equal : t -> t -> bool
val contains : t -> int64 -> bool
(** [contains t w]: is the concrete word [w] a member of [t]? *)

val subset : t -> t -> bool
(** [subset a b]: is every member of [a] a member of [b]?
    (Linux [tnum_in b a].) *)

(** {1 Arithmetic and bitwise transfer functions} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lshift : t -> int -> t
val rshift : t -> int -> t
(** Logical right shift. *)

val arshift : t -> int -> bits:int -> t
(** Arithmetic right shift at the given operand width (32 or 64). *)

val intersect : t -> t -> t
(** Meet: keep information from both (callers must know the operands are
    consistent, as in Linux). *)

val union : t -> t -> t
(** Join: keep only the information the operands agree on. *)

val cast : t -> size:int -> t
(** Truncate to the low [size] bytes (1, 2, 4 or 8), zeroing the rest. *)

val is_aligned : t -> int64 -> bool
(** [is_aligned t size]: is every member of [t] a multiple of [size]
    (for power-of-two sizes)? *)

(** {1 32-bit subregister views (Linux tnum_subreg etc.)} *)

val subreg : t -> t
val clear_subreg : t -> t
val with_subreg : t -> t -> t
val const_subreg : t -> int64 -> t

(** {1 Unsigned bounds implied by the tnum} *)

val umin : t -> int64
val umax : t -> int64

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Hex rendering [value/mask]. *)

val pp_bin : Format.formatter -> t -> unit
(** 64-character tribit string (0, 1 or x per bit), most significant first. *)

val to_string : t -> string
