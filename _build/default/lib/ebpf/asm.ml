(* A small assembler for writing eBPF programs by hand, with symbolic jump
   targets.  Jump offsets in the assembled [Insn.insn array] are in decoded
   instruction units (documented divergence from the raw slot-unit encoding;
   [Encode] round-trips arrays, not byte offsets).

   Usage:
     assemble [
       mov_i r0 0;
       label "loop"; ...;
       jne_i r1 0 "loop";
       exit_;
     ]
*)

type item =
  | Label of string
  | Plain of Insn.insn
  | Jmp_to of { cond : Insn.cond; width : Insn.width; dst : Insn.reg;
                src : Insn.operand; target : string }
  | Ja_to of string
  | Mov_label of Insn.reg * string  (* dst := pc of label (for callbacks) *)
  | Call_to of string               (* BPF-to-BPF call to a labelled subprog *)
  | Call_named of string            (* helper call by name, resolved at load
                                       time (the Fig. 5 "load-time fixup") *)

let label s = Label s
let insn i = Plain i

open Insn

(* re-export the registers so [open Ebpf.Asm] is self-contained *)
let r0 = Insn.r0
let r1 = Insn.r1
let r2 = Insn.r2
let r3 = Insn.r3
let r4 = Insn.r4
let r5 = Insn.r5
let r6 = Insn.r6
let r7 = Insn.r7
let r8 = Insn.r8
let r9 = Insn.r9
let r10 = Insn.r10
let fp = Insn.fp

(* ALU sugar; [_i] = immediate operand, [_r] = register operand. *)
let alu op dst src = Plain (Alu { op; width = W64; dst; src })
let alu32 op dst src = Plain (Alu { op; width = W32; dst; src })
let mov_i dst v = alu Mov dst (Imm v)
let mov_r dst src = alu Mov dst (Reg src)
let mov32_i dst v = alu32 Mov dst (Imm v)
let mov32_r dst src = alu32 Mov dst (Reg src)
let add_i dst v = alu Add dst (Imm v)
let add_r dst src = alu Add dst (Reg src)
let sub_i dst v = alu Sub dst (Imm v)
let sub_r dst src = alu Sub dst (Reg src)
let mul_i dst v = alu Mul dst (Imm v)
let mul_r dst src = alu Mul dst (Reg src)
let div_i dst v = alu Div dst (Imm v)
let div_r dst src = alu Div dst (Reg src)
let mod_i dst v = alu Mod dst (Imm v)
let mod_r dst src = alu Mod dst (Reg src)
let and_i dst v = alu And dst (Imm v)
let and_r dst src = alu And dst (Reg src)
let or_i dst v = alu Or dst (Imm v)
let or_r dst src = alu Or dst (Reg src)
let xor_i dst v = alu Xor dst (Imm v)
let xor_r dst src = alu Xor dst (Reg src)
let lsh_i dst v = alu Lsh dst (Imm v)
let rsh_i dst v = alu Rsh dst (Imm v)
let arsh_i dst v = alu Arsh dst (Imm v)
let neg dst = alu Neg dst (Imm 0)
let add32_i dst v = alu32 Add dst (Imm v)
let sub32_r dst src = alu32 Sub dst (Reg src)

let lddw dst v = Plain (Ld_imm64 (dst, v))
let map_fd dst fd = Plain (Ld_map_fd (dst, fd))

let ldx size dst src off = Plain (Ldx { size; dst; src; off })
let ldxb dst src off = ldx B dst src off
let ldxh dst src off = ldx H dst src off
let ldxw dst src off = ldx W dst src off
let ldxdw dst src off = ldx DW dst src off

let st size dst off imm = Plain (St { size; dst; off; imm })
let stw dst off imm = st W dst off imm
let stdw dst off imm = st DW dst off imm

let stx size dst off src = Plain (Stx { size; dst; off; src })

(* atomics: [dst+off] op= src; fetch variants return the old value in src *)
let atomic ?(fetch = false) aop size dst off src =
  Plain (Atomic { aop; size; dst; src; off; fetch })
let atomic_add ?fetch dst off src = atomic ?fetch A_add DW dst off src
let atomic_or ?fetch dst off src = atomic ?fetch A_or DW dst off src
let atomic_and ?fetch dst off src = atomic ?fetch A_and DW dst off src
let atomic_xor ?fetch dst off src = atomic ?fetch A_xor DW dst off src
let atomic_xchg dst off src = atomic ~fetch:true A_xchg DW dst off src
let atomic_cmpxchg dst off src = atomic ~fetch:true A_cmpxchg DW dst off src
let stxb dst off src = stx B dst off src
let stxw dst off src = stx W dst off src
let stxdw dst off src = stx DW dst off src

(* Conditional jumps to labels. *)
let jmp cond dst src target = Jmp_to { cond; width = W64; dst; src; target }
let jmp32 cond dst src target = Jmp_to { cond; width = W32; dst; src; target }
let jeq_i dst v t = jmp Eq dst (Imm v) t
let jeq_r dst src t = jmp Eq dst (Reg src) t
let jne_i dst v t = jmp Ne dst (Imm v) t
let jne_r dst src t = jmp Ne dst (Reg src) t
let jgt_i dst v t = jmp Gt dst (Imm v) t
let jge_i dst v t = jmp Ge dst (Imm v) t
let jlt_i dst v t = jmp Lt dst (Imm v) t
let jle_i dst v t = jmp Le dst (Imm v) t
let jsgt_i dst v t = jmp Sgt dst (Imm v) t
let jslt_i dst v t = jmp Slt dst (Imm v) t
let jsge_i dst v t = jmp Sge dst (Imm v) t
let jsle_i dst v t = jmp Sle dst (Imm v) t
let jset_i dst v t = jmp Set dst (Imm v) t
let jlt_r dst src t = jmp Lt dst (Reg src) t
let jge_r dst src t = jmp Ge dst (Reg src) t

let ja target = Ja_to target
let mov_label dst target = Mov_label (dst, target)
let call_sub target = Call_to target
let call_named name = Call_named name
let call id = Plain (Call id)
let exit_ = Plain Exit

let assemble_with_relocs (items : item list) :
    (Insn.insn array * (int * string) list, string) result =
  (* pass 1: positions of labels in instruction units *)
  let labels = Hashtbl.create 8 in
  let pc = ref 0 in
  let dup = ref None in
  List.iter
    (fun it ->
      match it with
      | Label s ->
        if Hashtbl.mem labels s then dup := Some s else Hashtbl.replace labels s !pc
      | Plain _ | Jmp_to _ | Ja_to _ | Mov_label _ | Call_to _ | Call_named _ ->
        incr pc)
    items;
  match !dup with
  | Some s -> Error (Printf.sprintf "duplicate label %S" s)
  | None -> (
    (* pass 2: emit, resolving targets relative to the next instruction *)
    let missing = ref None in
    let relocs = ref [] in
    let resolve s next_pc =
      match Hashtbl.find_opt labels s with
      | Some target -> target - next_pc
      | None ->
        if !missing = None then missing := Some s;
        0
    in
    let out = ref [] in
    let pc = ref 0 in
    List.iter
      (fun it ->
        match it with
        | Label _ -> ()
        | Plain i ->
          incr pc;
          out := i :: !out
        | Jmp_to { cond; width; dst; src; target } ->
          incr pc;
          out := Jmp { cond; width; dst; src; off = resolve target !pc } :: !out
        | Ja_to target ->
          incr pc;
          out := Ja (resolve target !pc) :: !out
        | Mov_label (dst, target) ->
          incr pc;
          let abs = resolve target !pc + !pc in
          out := Alu { op = Mov; width = W64; dst; src = Imm abs } :: !out
        | Call_to target ->
          incr pc;
          out := Call_sub (resolve target !pc) :: !out
        | Call_named name ->
          (* a placeholder call; the loader's fixup patches the real id *)
          relocs := (!pc, name) :: !relocs;
          incr pc;
          out := Call (-1) :: !out)
      items;
    match !missing with
    | Some s -> Error (Printf.sprintf "undefined label %S" s)
    | None -> Ok (Array.of_list (List.rev !out), List.rev !relocs))

(* The relocation-free view: fails if the program uses call_named. *)
let assemble items =
  match assemble_with_relocs items with
  | Error _ as e -> e
  | Ok (insns, []) -> Ok insns
  | Ok (_, _ :: _) -> Error "program has unresolved helper names (use the loader)"

let assemble_exn items =
  match assemble items with Ok p -> p | Error msg -> invalid_arg ("Asm.assemble: " ^ msg)
