(* Textual disassembly with resolved jump targets. *)

let jump_targets (insns : Insn.insn array) =
  let targets = Hashtbl.create 8 in
  Array.iteri
    (fun pc insn ->
      let record off =
        let t = pc + 1 + off in
        if not (Hashtbl.mem targets t) then
          Hashtbl.replace targets t (Printf.sprintf "L%d" (Hashtbl.length targets))
      in
      match insn with
      | Insn.Jmp { off; _ } -> record off
      | Insn.Ja off -> record off
      | _ -> ())
    insns;
  targets

let pp ppf (insns : Insn.insn array) =
  let targets = jump_targets insns in
  Array.iteri
    (fun pc insn ->
      (match Hashtbl.find_opt targets pc with
      | Some l -> Format.fprintf ppf "%s:@." l
      | None -> ());
      let suffix =
        match insn with
        | Insn.Jmp { off; _ } | Insn.Ja off -> (
          match Hashtbl.find_opt targets (pc + 1 + off) with
          | Some l -> Printf.sprintf "  ; -> %s" l
          | None -> "")
        | _ -> ""
      in
      Format.fprintf ppf "%4d: %a%s@." pc Insn.pp insn suffix)
    insns;
  (* a trailing label (jump past the end) *)
  match Hashtbl.find_opt targets (Array.length insns) with
  | Some l -> Format.fprintf ppf "%s:@." l
  | None -> ()

let to_string insns = Format.asprintf "%a" pp insns
