(* Wire format: the kernel's 8-byte instruction encoding.

     struct bpf_insn {
       __u8  code;     // opcode
       __u8  dst_reg:4, src_reg:4;
       __s16 off;
       __s32 imm;
     };

   [Ld_imm64]/[Ld_map_fd] occupy two slots; the second slot carries the high
   32 bits in its imm field.  Opcode values are the real ones, so encoded
   programs are byte-compatible with the kernel format (modulo helper ids,
   which are ours). *)

(* instruction classes *)
let class_ld = 0x00
let class_ldx = 0x01
let class_st = 0x02
let class_stx = 0x03
let class_alu = 0x04
let class_jmp = 0x05
let class_jmp32 = 0x06
let class_alu64 = 0x07

(* size field (LD/ST) *)
let sz_w = 0x00
let sz_h = 0x08
let sz_b = 0x10
let sz_dw = 0x18

(* mode field *)
let mode_imm = 0x00
let mode_mem = 0x60
let mode_atomic = 0xc0

(* BPF_ATOMIC imm encodings *)
let atomic_fetch = 0x01
let atomic_code = function
  | Insn.A_add -> 0x00 | A_or -> 0x40 | A_and -> 0x50 | A_xor -> 0xa0
  | A_xchg -> 0xe0 | A_cmpxchg -> 0xf0
let atomic_of_code = function
  | 0x00 -> Some Insn.A_add | 0x40 -> Some Insn.A_or | 0x50 -> Some Insn.A_and
  | 0xa0 -> Some Insn.A_xor | 0xe0 -> Some Insn.A_xchg | 0xf0 -> Some Insn.A_cmpxchg
  | _ -> None

(* source field *)
let src_k = 0x00
let src_x = 0x08

let pseudo_map_fd = 1 (* src_reg value marking a map-fd load *)
let pseudo_call = 1   (* src_reg value marking a BPF-to-BPF call *)

let alu_code = function
  | Insn.Add -> 0x00 | Sub -> 0x10 | Mul -> 0x20 | Div -> 0x30 | Or -> 0x40
  | And -> 0x50 | Lsh -> 0x60 | Rsh -> 0x70 | Neg -> 0x80 | Mod -> 0x90
  | Xor -> 0xa0 | Mov -> 0xb0 | Arsh -> 0xc0

let alu_of_code = function
  | 0x00 -> Some Insn.Add | 0x10 -> Some Sub | 0x20 -> Some Mul | 0x30 -> Some Div
  | 0x40 -> Some Or | 0x50 -> Some And | 0x60 -> Some Lsh | 0x70 -> Some Rsh
  | 0x80 -> Some Neg | 0x90 -> Some Mod | 0xa0 -> Some Xor | 0xb0 -> Some Mov
  | 0xc0 -> Some Arsh | _ -> None

let jmp_code = function
  | Insn.Eq -> 0x10 | Gt -> 0x20 | Ge -> 0x30 | Set -> 0x40 | Ne -> 0x50
  | Sgt -> 0x60 | Sge -> 0x70 | Lt -> 0xa0 | Le -> 0xb0 | Slt -> 0xc0 | Sle -> 0xd0

let jmp_of_code = function
  | 0x10 -> Some Insn.Eq | 0x20 -> Some Gt | 0x30 -> Some Ge | 0x40 -> Some Set
  | 0x50 -> Some Ne | 0x60 -> Some Sgt | 0x70 -> Some Sge | 0xa0 -> Some Lt
  | 0xb0 -> Some Le | 0xc0 -> Some Slt | 0xd0 -> Some Sle | _ -> None

let size_code = function Insn.W -> sz_w | H -> sz_h | B -> sz_b | DW -> sz_dw

let size_of_code = function
  | c when c = sz_w -> Some Insn.W
  | c when c = sz_h -> Some Insn.H
  | c when c = sz_b -> Some Insn.B
  | c when c = sz_dw -> Some Insn.DW
  | _ -> None

type raw = { code : int; dst : int; src : int; off : int; imm : int32 }

let ja_code = 0x00
let call_code = 0x80
let exit_code = 0x90

(* Encode one instruction into one or two raw slots. *)
let encode_insn (i : Insn.insn) : raw list =
  let imm32 v = Int32.of_int v in
  match i with
  | Alu { op; width; dst; src } ->
    let cls = match width with Insn.W64 -> class_alu64 | W32 -> class_alu in
    (match src with
    | Reg s -> [ { code = cls lor src_x lor alu_code op; dst; src = s; off = 0; imm = 0l } ]
    | Imm v -> [ { code = cls lor src_k lor alu_code op; dst; src = 0; off = 0; imm = imm32 v } ])
  | Ld_imm64 (dst, v) ->
    let lo = Int64.to_int32 v in
    let hi = Int64.to_int32 (Int64.shift_right_logical v 32) in
    [ { code = class_ld lor mode_imm lor sz_dw; dst; src = 0; off = 0; imm = lo };
      { code = 0; dst = 0; src = 0; off = 0; imm = hi } ]
  | Ld_map_fd (dst, fd) ->
    [ { code = class_ld lor mode_imm lor sz_dw; dst; src = pseudo_map_fd; off = 0;
        imm = imm32 fd };
      { code = 0; dst = 0; src = 0; off = 0; imm = 0l } ]
  | Ldx { size; dst; src; off } ->
    [ { code = class_ldx lor mode_mem lor size_code size; dst; src; off; imm = 0l } ]
  | St { size; dst; off; imm } ->
    [ { code = class_st lor mode_mem lor size_code size; dst; src = 0; off; imm = imm32 imm } ]
  | Stx { size; dst; off; src } ->
    [ { code = class_stx lor mode_mem lor size_code size; dst; src; off; imm = 0l } ]
  | Atomic { aop; size; dst; src; off; fetch } ->
    let imm =
      atomic_code aop
      lor (if fetch || aop = Insn.A_xchg || aop = Insn.A_cmpxchg then atomic_fetch
           else 0)
    in
    [ { code = class_stx lor mode_atomic lor size_code size; dst; src; off;
        imm = Int32.of_int imm } ]
  | Jmp { cond; width; dst; src; off } ->
    let cls = match width with Insn.W64 -> class_jmp | W32 -> class_jmp32 in
    (match src with
    | Reg s -> [ { code = cls lor src_x lor jmp_code cond; dst; src = s; off; imm = 0l } ]
    | Imm v -> [ { code = cls lor src_k lor jmp_code cond; dst; src = 0; off; imm = imm32 v } ])
  | Ja off -> [ { code = class_jmp lor ja_code; dst = 0; src = 0; off; imm = 0l } ]
  | Call id -> [ { code = class_jmp lor call_code; dst = 0; src = 0; off = 0; imm = imm32 id } ]
  | Call_sub off ->
    [ { code = class_jmp lor call_code; dst = 0; src = pseudo_call; off = 0;
        imm = imm32 off } ]
  | Exit -> [ { code = class_jmp lor exit_code; dst = 0; src = 0; off = 0; imm = 0l } ]

let raw_to_bytes r =
  let b = Bytes.create 8 in
  Bytes.set b 0 (Char.chr (r.code land 0xff));
  Bytes.set b 1 (Char.chr ((r.dst land 0xf) lor ((r.src land 0xf) lsl 4)));
  Bytes.set_int16_le b 2 (r.off land 0xffff);
  Bytes.set_int32_le b 4 r.imm;
  b

let raw_of_bytes b ~pos =
  let byte i = Char.code (Bytes.get b (pos + i)) in
  let off =
    let v = Bytes.get_int16_le b (pos + 2) in
    v
  in
  { code = byte 0; dst = byte 1 land 0xf; src = (byte 1 lsr 4) land 0xf; off;
    imm = Bytes.get_int32_le b (pos + 4) }

let to_bytes (prog : Insn.insn array) : Bytes.t =
  let raws = Array.to_list prog |> List.concat_map encode_insn in
  let buf = Buffer.create (8 * List.length raws) in
  List.iter (fun r -> Buffer.add_bytes buf (raw_to_bytes r)) raws;
  Buffer.to_bytes buf

exception Decode_error of string

let decode_raw (r : raw) (next : raw option) : Insn.insn * int =
  let cls = r.code land 0x07 in
  let open Insn in
  if cls = class_ld && r.code land 0x18 = sz_dw && r.code land 0xe0 = mode_imm then begin
    match next with
    | None -> raise (Decode_error "truncated lddw")
    | Some hi ->
      if r.src = pseudo_map_fd then (Ld_map_fd (r.dst, Int32.to_int r.imm), 2)
      else
        let v =
          Int64.logor
            (Int64.logand (Int64.of_int32 r.imm) 0xffff_ffffL)
            (Int64.shift_left (Int64.of_int32 hi.imm) 32)
        in
        (Ld_imm64 (r.dst, v), 2)
  end
  else if cls = class_ldx then
    match size_of_code (r.code land 0x18) with
    | Some size -> (Ldx { size; dst = r.dst; src = r.src; off = r.off }, 1)
    | None -> raise (Decode_error "bad ldx size")
  else if cls = class_st then
    match size_of_code (r.code land 0x18) with
    | Some size -> (St { size; dst = r.dst; off = r.off; imm = Int32.to_int r.imm }, 1)
    | None -> raise (Decode_error "bad st size")
  else if cls = class_stx && r.code land 0xe0 = mode_atomic then begin
    match size_of_code (r.code land 0x18) with
    | Some ((W | DW) as size) -> (
      let imm = Int32.to_int r.imm in
      match atomic_of_code (imm land 0xf0) with
      | Some aop ->
        let fetch =
          imm land atomic_fetch <> 0 || aop = A_xchg || aop = A_cmpxchg
        in
        (Atomic { aop; size; dst = r.dst; src = r.src; off = r.off; fetch }, 1)
      | None -> (
        (* BPF_ADD is code 0x00: mask it out of the low nibble *)
        match imm land 0xf0 with
        | _ -> raise (Decode_error "bad atomic op")))
    | _ -> raise (Decode_error "bad atomic size")
  end
  else if cls = class_stx then
    match size_of_code (r.code land 0x18) with
    | Some size -> (Stx { size; dst = r.dst; off = r.off; src = r.src }, 1)
    | None -> raise (Decode_error "bad stx size")
  else if cls = class_alu || cls = class_alu64 then begin
    let width = if cls = class_alu64 then W64 else W32 in
    match alu_of_code (r.code land 0xf0) with
    | None -> raise (Decode_error "bad alu op")
    | Some op ->
      let src = if r.code land 0x08 = src_x then Reg r.src else Imm (Int32.to_int r.imm) in
      (Alu { op; width; dst = r.dst; src }, 1)
  end
  else if cls = class_jmp || cls = class_jmp32 then begin
    let opc = r.code land 0xf0 in
    if cls = class_jmp && opc = ja_code then (Ja r.off, 1)
    else if cls = class_jmp && opc = call_code then
      (if r.src = pseudo_call then (Call_sub (Int32.to_int r.imm), 1)
       else (Call (Int32.to_int r.imm), 1))
    else if cls = class_jmp && opc = exit_code then (Exit, 1)
    else
      match jmp_of_code opc with
      | None -> raise (Decode_error "bad jmp op")
      | Some cond ->
        let width = if cls = class_jmp then W64 else W32 in
        let src = if r.code land 0x08 = src_x then Reg r.src else Imm (Int32.to_int r.imm) in
        (Jmp { cond; width; dst = r.dst; src; off = r.off }, 1)
  end
  else raise (Decode_error (Printf.sprintf "bad class %d" cls))

let of_bytes (b : Bytes.t) : (Insn.insn array, string) result =
  if Bytes.length b mod 8 <> 0 then Error "program length not a multiple of 8"
  else
    try
      let n = Bytes.length b / 8 in
      let out = ref [] in
      let i = ref 0 in
      while !i < n do
        let r = raw_of_bytes b ~pos:(!i * 8) in
        let next = if !i + 1 < n then Some (raw_of_bytes b ~pos:((!i + 1) * 8)) else None in
        let insn, used = decode_raw r next in
        out := insn :: !out;
        i := !i + used
      done;
      Ok (Array.of_list (List.rev !out))
    with Decode_error msg -> Error msg
