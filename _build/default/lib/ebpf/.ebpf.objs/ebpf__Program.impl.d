lib/ebpf/program.ml: Array Asm Insn List Printf Result
