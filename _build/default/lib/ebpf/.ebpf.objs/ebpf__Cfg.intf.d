lib/ebpf/cfg.mli: Hashtbl Insn
