lib/ebpf/disasm.ml: Array Format Hashtbl Insn Printf
