lib/ebpf/disasm.mli: Format Hashtbl Insn
