lib/ebpf/insn.ml: Format
