lib/ebpf/cfg.ml: Array Hashtbl Insn List
