lib/ebpf/encode.ml: Array Buffer Bytes Char Insn Int32 Int64 List Printf
