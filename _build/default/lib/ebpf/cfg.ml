(* Control-flow graph over an instruction array: basic blocks, successor
   edges, back-edge detection and a (capped) path count.  The verifier uses
   the block structure for its statistics and the path count feeds the
   §2.1 "verification is expensive" experiment. *)

type block = {
  start_pc : int;
  end_pc : int; (* inclusive *)
  mutable succs : int list; (* start pcs of successor blocks *)
}

type t = {
  blocks : (int, block) Hashtbl.t; (* keyed by start pc *)
  entry : int;
  n_insns : int;
}

let successors_of_insn pc insn =
  match insn with
  | Insn.Exit -> []
  | Insn.Ja off -> [ pc + 1 + off ]
  | Insn.Jmp { off; _ } -> [ pc + 1; pc + 1 + off ]
  | _ -> [ pc + 1 ]

let build (insns : Insn.insn array) : t =
  let n = Array.length insns in
  let leader = Array.make (n + 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun pc insn ->
      match insn with
      | Insn.Ja off ->
        if pc + 1 <= n then leader.(min n (pc + 1)) <- true;
        let t = pc + 1 + off in
        if t >= 0 && t <= n then leader.(min n t) <- true
      | Insn.Jmp { off; _ } ->
        if pc + 1 <= n then leader.(min n (pc + 1)) <- true;
        let t = pc + 1 + off in
        if t >= 0 && t <= n then leader.(min n t) <- true
      | Insn.Exit -> if pc + 1 <= n then leader.(min n (pc + 1)) <- true
      | _ -> ())
    insns;
  let blocks = Hashtbl.create 16 in
  let start = ref 0 in
  for pc = 0 to n - 1 do
    let is_last = pc = n - 1 || leader.(pc + 1) in
    if is_last then begin
      let b = { start_pc = !start; end_pc = pc; succs = [] } in
      b.succs <- successors_of_insn pc insns.(pc) |> List.filter (fun s -> s >= 0 && s < n);
      Hashtbl.replace blocks !start b;
      start := pc + 1
    end
  done;
  { blocks; entry = 0; n_insns = n }

let block_count t = Hashtbl.length t.blocks

let edge_count t = Hashtbl.fold (fun _ b acc -> acc + List.length b.succs) t.blocks 0

(* Back edges w.r.t. a DFS from the entry: the loop detector. *)
let back_edges t =
  let visited = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let backs = ref [] in
  let rec dfs pc =
    if not (Hashtbl.mem visited pc) then begin
      Hashtbl.replace visited pc ();
      Hashtbl.replace on_stack pc ();
      (match Hashtbl.find_opt t.blocks pc with
      | None -> ()
      | Some b ->
        List.iter
          (fun s ->
            if Hashtbl.mem on_stack s then backs := (pc, s) :: !backs
            else dfs s)
          b.succs);
      Hashtbl.remove on_stack pc
    end
  in
  if Hashtbl.mem t.blocks t.entry then dfs t.entry;
  !backs

let has_loop t = back_edges t <> []

(* Number of distinct entry-to-exit paths, capped (the quantity that blows
   up in path-sensitive verification).  On cyclic graphs returns the cap. *)
let path_count ?(cap = 1_000_000_000) t =
  if has_loop t then cap
  else begin
    let memo = Hashtbl.create 16 in
    let rec count pc =
      match Hashtbl.find_opt memo pc with
      | Some c -> c
      | None ->
        let c =
          match Hashtbl.find_opt t.blocks pc with
          | None -> 1
          | Some b ->
            if b.succs = [] then 1
            else
              List.fold_left (fun acc s -> min cap (acc + count s)) 0 b.succs
        in
        Hashtbl.replace memo pc c;
        c
    in
    count t.entry
  end
