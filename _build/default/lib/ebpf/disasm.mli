(** Textual disassembly with resolved jump labels ([L0:], [; -> L0]). *)

val jump_targets : Insn.insn array -> (int, string) Hashtbl.t
(** Label names for every pc that is a jump target. *)

val pp : Format.formatter -> Insn.insn array -> unit

val to_string : Insn.insn array -> string
