(** Control-flow graph over an instruction array: basic blocks, back-edge
    detection (the pre-5.3 loop rejection), and the capped path count that
    feeds the §2.1 verification-cost experiment. *)

type block = {
  start_pc : int;
  end_pc : int; (** inclusive *)
  mutable succs : int list; (** start pcs of successor blocks *)
}

type t = {
  blocks : (int, block) Hashtbl.t; (** keyed by start pc *)
  entry : int;
  n_insns : int;
}

val successors_of_insn : int -> Insn.insn -> int list

val build : Insn.insn array -> t

val block_count : t -> int
val edge_count : t -> int

val back_edges : t -> (int * int) list
(** DFS back edges (from-block, to-block): the loop detector. *)

val has_loop : t -> bool

val path_count : ?cap:int -> t -> int
(** Distinct entry-to-exit paths, capped (the quantity that explodes in
    path-sensitive verification); returns the cap on cyclic graphs. *)
