(* The eBPF instruction set.

   This mirrors the real bytecode: 11 registers (r0..r10, r10 = read-only
   frame pointer), 64/32-bit ALU, memory loads/stores of 1/2/4/8 bytes,
   conditional jumps (64- and 32-bit), helper calls and exit.  [Encode]
   packs these into the kernel's 8-byte wire format. *)

type reg = int (* 0..10; r10 is the frame pointer *)

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let fp = r10
let max_reg = 10

let valid_reg r = r >= 0 && r <= max_reg

type size = B | H | W | DW

let size_bytes = function B -> 1 | H -> 2 | W -> 4 | DW -> 8

type alu_op = Add | Sub | Mul | Div | Or | And | Lsh | Rsh | Neg | Mod | Xor | Mov | Arsh

type width = W64 | W32

type operand = Reg of reg | Imm of int (* imm is a signed 32-bit value *)

type cond = Eq | Gt | Ge | Set | Ne | Sgt | Sge | Lt | Le | Slt | Sle

(* BPF_ATOMIC operations (kernel 5.12+ generalised atomics).  [fetch] makes
   the source register receive the old memory value; cmpxchg always uses r0
   as the comparand and always writes the old value back to r0. *)
type atomic_op = A_add | A_or | A_and | A_xor | A_xchg | A_cmpxchg

type insn =
  | Alu of { op : alu_op; width : width; dst : reg; src : operand }
  | Ld_imm64 of reg * int64
  | Ld_map_fd of reg * int            (* pseudo: load a map reference *)
  | Ldx of { size : size; dst : reg; src : reg; off : int }
  | St of { size : size; dst : reg; off : int; imm : int }
  | Stx of { size : size; dst : reg; off : int; src : reg }
  | Atomic of { aop : atomic_op; size : size (* W or DW *); dst : reg;
                src : reg; off : int; fetch : bool }
  | Jmp of { cond : cond; width : width; dst : reg; src : operand; off : int }
  | Ja of int                          (* unconditional, relative to next insn *)
  | Call of int                        (* helper id *)
  | Call_sub of int                    (* BPF-to-BPF call, relative to next insn *)
  | Exit

(* Number of 8-byte slots the instruction occupies on the wire. *)
let slots = function Ld_imm64 _ | Ld_map_fd _ -> 2 | _ -> 1

let alu_op_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Or -> "or"
  | And -> "and" | Lsh -> "lsh" | Rsh -> "rsh" | Neg -> "neg" | Mod -> "mod"
  | Xor -> "xor" | Mov -> "mov" | Arsh -> "arsh"

let atomic_op_to_string = function
  | A_add -> "add" | A_or -> "or" | A_and -> "and" | A_xor -> "xor"
  | A_xchg -> "xchg" | A_cmpxchg -> "cmpxchg"

let cond_to_string = function
  | Eq -> "jeq" | Gt -> "jgt" | Ge -> "jge" | Set -> "jset" | Ne -> "jne"
  | Sgt -> "jsgt" | Sge -> "jsge" | Lt -> "jlt" | Le -> "jle" | Slt -> "jslt"
  | Sle -> "jsle"

let size_to_string = function B -> "b" | H -> "h" | W -> "w" | DW -> "dw"

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm i -> Format.fprintf ppf "%d" i

let pp ppf = function
  | Alu { op = Neg; width; dst; _ } ->
    Format.fprintf ppf "neg%s r%d" (match width with W64 -> "" | W32 -> "32") dst
  | Alu { op; width; dst; src } ->
    Format.fprintf ppf "%s%s r%d, %a" (alu_op_to_string op)
      (match width with W64 -> "" | W32 -> "32")
      dst pp_operand src
  | Ld_imm64 (dst, v) -> Format.fprintf ppf "lddw r%d, 0x%Lx" dst v
  | Ld_map_fd (dst, fd) -> Format.fprintf ppf "lddw r%d, map_fd %d" dst fd
  | Ldx { size; dst; src; off } ->
    Format.fprintf ppf "ldx%s r%d, [r%d%+d]" (size_to_string size) dst src off
  | St { size; dst; off; imm } ->
    Format.fprintf ppf "st%s [r%d%+d], %d" (size_to_string size) dst off imm
  | Stx { size; dst; off; src } ->
    Format.fprintf ppf "stx%s [r%d%+d], r%d" (size_to_string size) dst off src
  | Atomic { aop; size; dst; src; off; fetch } ->
    Format.fprintf ppf "atomic%s%s_%s [r%d%+d], r%d"
      (if fetch then "_fetch" else "")
      (size_to_string size) (atomic_op_to_string aop) dst off src
  | Jmp { cond; width; dst; src; off } ->
    Format.fprintf ppf "%s%s r%d, %a, %+d" (cond_to_string cond)
      (match width with W64 -> "" | W32 -> "32")
      dst pp_operand src off
  | Ja off -> Format.fprintf ppf "ja %+d" off
  | Call id -> Format.fprintf ppf "call %d" id
  | Call_sub off -> Format.fprintf ppf "call pc%+d" off
  | Exit -> Format.fprintf ppf "exit"

let to_string i = Format.asprintf "%a" pp i
