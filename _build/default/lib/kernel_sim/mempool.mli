(** The pre-allocated, fixed-chunk memory pool — the BPF-specific allocator
    the paper cites and the §4 "dynamic memory allocation" substrate
    (usable from non-sleepable contexts because nothing ever sleeps).

    Chunks live inside one guarded {!Kmem} region, so chunk addresses are
    real simulated kernel addresses with all the usual fault checks. *)

type t = {
  chunk_size : int;
  capacity : int;
  backing : Kmem.region;
  mem : Kmem.t;
  clock : Vclock.t;
  mutable free_chunks : int list;
  mutable allocated : (int64, int) Hashtbl.t;
  mutable high_water : int;
}

val create : Kmem.t -> Vclock.t -> chunk_size:int -> capacity:int -> t

val in_use : t -> int
val available : t -> int

val alloc : t -> int64 option
(** The chunk's address, or [None] on exhaustion (never a fault: callers
    must handle allocation failure, as kernel code must).  Chunks are
    zeroed so stale data cannot leak across allocations. *)

val free : t -> int64 -> context:string -> unit
(** Return a chunk; double free oopses. *)

val leaked : t -> int64 list
(** Chunks currently allocated (leak accounting for {!Kernel.health}). *)
