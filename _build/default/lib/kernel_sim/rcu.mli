(** RCU read-side critical-section tracking with a stall detector.

    eBPF program invocations run under [read_lock]/[read_unlock]; the
    runtime calls {!check_stall} periodically, mirroring the kernel's
    21-second RCU_CPU_STALL_TIMEOUT.  The §2.2 termination experiment is
    observed through {!stall_count}. *)

type stall = {
  at_ns : int64;        (** when the stall was reported *)
  held_for_ns : int64;  (** how long the section had been open *)
  context : string;
}

type t = {
  clock : Vclock.t;
  mutable nesting : int;
  mutable entered_at : int64;
  mutable stalls : stall list;
  mutable stall_threshold_ns : int64;
      (** report threshold; defaults to the kernel's 21 s *)
  mutable last_report_at : int64;
}

val default_stall_threshold_ns : int64

val create : Vclock.t -> t

val read_lock : t -> unit
(** Enter (or nest into) a read-side critical section. *)

val read_unlock : t -> context:string -> unit
(** Leave one nesting level; unbalanced unlock oopses. *)

val in_critical_section : t -> bool

val check_stall : t -> context:string -> unit
(** The simulated tick: records (rate-limited) stall reports once the
    current section has been open longer than the threshold. *)

val stalls : t -> stall list
val stall_count : t -> int

val held_for : t -> int64
(** How long the current section has been open (0 outside sections). *)

val pp_stall : Format.formatter -> stall -> unit
