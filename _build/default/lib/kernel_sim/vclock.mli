(** The virtual monotonic clock every simulated activity advances.

    All stall detection, watchdogs and the paper's "runs for millions of
    years" extrapolations are expressed in this clock's nanoseconds, which
    keeps every experiment deterministic and lets termination behaviour be
    measured without waiting for wall time. *)

type t = { mutable now_ns : int64 }

val create : unit -> t
(** A clock at t = 0. *)

val now : t -> int64
(** Current simulated time in nanoseconds. *)

val advance : t -> int64 -> unit
(** [advance t ns] moves time forward; never backwards. *)

val reset : t -> unit

val ns_per_sec : int64

val pp_duration : Format.formatter -> int64 -> unit
(** Human-readable rendering (ns/us/ms/s). *)
