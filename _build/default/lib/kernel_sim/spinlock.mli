(** Simulated spinlocks with self-deadlock detection.

    On the single simulated CPU any contended acquire is a guaranteed
    deadlock, so bypassing the verifier's one-lock-released-before-exit
    checks (the §2.1 bpf_spin_lock example) turns into an immediate,
    observable oops. *)

type t = {
  id : int;
  name : string;
  clock : Vclock.t;
  mutable holder : string option; (** the execution context holding it *)
  mutable acquired_at : int64;
  mutable acquisitions : int;
}

val make : id:int -> name:string -> Vclock.t -> t

val lock : t -> owner:string -> unit
(** Acquire; oopses (deadlock) if already held by anyone. *)

val unlock : t -> owner:string -> unit
(** Release; oopses if not held or held by a different owner. *)

val is_held : t -> bool
val holder : t -> string option
