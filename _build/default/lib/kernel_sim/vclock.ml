(* Virtual monotonic clock. Every simulated activity (instruction retire,
   helper call, stall check) advances it explicitly, which makes the RCU
   stall and watchdog experiments deterministic and lets the termination
   experiment extrapolate to the paper's "millions of years" without
   waiting for them. *)

type t = { mutable now_ns : int64 }

let create () = { now_ns = 0L }
let now t = t.now_ns
let advance t ns = t.now_ns <- Int64.add t.now_ns ns
let reset t = t.now_ns <- 0L

let ns_per_sec = 1_000_000_000L

let pp_duration ppf ns =
  if Int64.compare ns 1_000L < 0 then Format.fprintf ppf "%Ldns" ns
  else if Int64.compare ns 1_000_000L < 0 then
    Format.fprintf ppf "%.1fus" (Int64.to_float ns /. 1e3)
  else if Int64.compare ns ns_per_sec < 0 then
    Format.fprintf ppf "%.1fms" (Int64.to_float ns /. 1e6)
  else Format.fprintf ppf "%.2fs" (Int64.to_float ns /. 1e9)
