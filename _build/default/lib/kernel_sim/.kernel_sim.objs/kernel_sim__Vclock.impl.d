lib/kernel_sim/vclock.ml: Format Int64
