lib/kernel_sim/rcu.mli: Format Vclock
