lib/kernel_sim/oops.ml: Format Vclock
