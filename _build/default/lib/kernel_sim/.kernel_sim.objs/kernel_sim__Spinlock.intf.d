lib/kernel_sim/spinlock.mli: Vclock
