lib/kernel_sim/kobject.ml: Bytes Hashtbl Int64 Kmem Printf Refcount
