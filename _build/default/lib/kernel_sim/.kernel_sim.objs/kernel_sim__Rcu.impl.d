lib/kernel_sim/rcu.ml: Format Int64 List Oops Vclock
