lib/kernel_sim/spinlock.ml: Oops Option Printf String Vclock
