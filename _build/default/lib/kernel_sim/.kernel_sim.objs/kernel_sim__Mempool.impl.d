lib/kernel_sim/mempool.ml: Bytes Hashtbl Kmem List Oops Vclock
