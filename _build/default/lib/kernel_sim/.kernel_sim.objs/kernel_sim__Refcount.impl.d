lib/kernel_sim/refcount.ml: Format List Oops Vclock
