lib/kernel_sim/vclock.mli: Format
