lib/kernel_sim/mempool.mli: Hashtbl Kmem Vclock
