lib/kernel_sim/kmem.ml: Buffer Bytes Char Format Int64 List Oops Vclock
