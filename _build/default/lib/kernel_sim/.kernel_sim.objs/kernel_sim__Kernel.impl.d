lib/kernel_sim/kernel.ml: Format Hashtbl Kmem Kobject List Mempool Oops Option Rcu Refcount Spinlock Vclock
