lib/kernel_sim/refcount.mli: Format Vclock
