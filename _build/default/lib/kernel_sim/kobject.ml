(* Simulated kernel objects that helper functions touch: tasks, sockets and
   socket buffers.  Each refcounted object holds its payload in guarded
   memory so that "kernel data structure" accesses from extensions go through
   the same fault machinery as everything else. *)

type task = {
  pid : int;
  tgid : int;
  comm : string;
  task_ref : Refcount.t;
  kstack : Kmem.region;          (* for bpf_get_task_stack *)
  tstruct : Kmem.region;         (* the task_struct payload itself *)
  local_storage : (int, int64) Hashtbl.t; (* map_id -> storage addr *)
}

type sock_state = Listen | Established | Request (* mini TCP state for sk_lookup *)

type sock = {
  sk_id : int;
  port : int;
  state : sock_state;
  sock_ref : Refcount.t;
  sk_mem : Kmem.region;
}

type sk_buff = {
  skb_mem : Kmem.region;  (* packet bytes *)
  mutable len : int;
  mutable mark : int64;
}

let task_struct_size = 256
let kstack_size = 1024
let sock_size = 128

let make_task mem refs ~pid ~tgid ~comm =
  let tstruct = Kmem.alloc mem ~size:task_struct_size ~kind:"object" ~name:("task:" ^ comm) () in
  let kstack = Kmem.alloc mem ~size:kstack_size ~kind:"object" ~name:("kstack:" ^ comm) () in
  (* store pid/tgid at fixed offsets so probe-read-style helpers can find them *)
  Kmem.store mem ~size:4 ~addr:(Kmem.region_addr tstruct 0) ~value:(Int64.of_int pid)
    ~context:"make_task";
  Kmem.store mem ~size:4 ~addr:(Kmem.region_addr tstruct 4) ~value:(Int64.of_int tgid)
    ~context:"make_task";
  { pid; tgid; comm; task_ref = Refcount.make refs ~what:"task" (); kstack; tstruct;
    local_storage = Hashtbl.create 4 }

let task_addr task = task.tstruct.Kmem.base

let make_sock mem refs ~id ~port ~state =
  let sk_mem = Kmem.alloc mem ~size:sock_size ~kind:"object" ~name:(Printf.sprintf "sock:%d" port) () in
  Kmem.store mem ~size:4 ~addr:(Kmem.region_addr sk_mem 0) ~value:(Int64.of_int port)
    ~context:"make_sock";
  let what = match state with Request -> "request_sock" | Listen | Established -> "sock" in
  { sk_id = id; port; state; sock_ref = Refcount.make refs ~what (); sk_mem }

let sock_addr sk = sk.sk_mem.Kmem.base

let make_skb mem ~payload =
  let len = Bytes.length payload in
  let skb_mem = Kmem.alloc mem ~size:(max len 1) ~kind:"ctx" ~name:"sk_buff" () in
  Kmem.store_bytes mem ~addr:skb_mem.Kmem.base ~src:payload ~context:"make_skb";
  { skb_mem; len; mark = 0L }

let skb_data skb = skb.skb_mem.Kmem.base
