(** Kernel-style reference counters with leak accounting.

    The registry records every live counter so that {!Kernel.health} can
    attribute leaks to an extension run — the measurement behind the
    Table 1 "Reference count leak" demos and the §3.1/§3.2 claim that RAII
    makes that class structurally impossible. *)

type t = {
  id : int;
  what : string;                           (** "task", "request_sock", ... *)
  mutable count : int;
  mutable released : (unit -> unit) option; (** runs when count drops to 0 *)
}

type registry = {
  clock : Vclock.t;
  mutable next_id : int;
  mutable live : t list;
  mutable total_gets : int;
  mutable total_puts : int;
}

val create_registry : Vclock.t -> registry

val saturation_limit : int

val make : registry -> what:string -> ?released:(unit -> unit) -> unit -> t
(** A fresh counter at 1, registered as live. *)

val get : registry -> t -> unit
(** Increment; oopses on use of a dead counter or on saturation. *)

val put : registry -> t -> unit
(** Decrement; at zero the counter is deregistered and [released] runs;
    underflow oopses. *)

val count : t -> int

val leaked : registry -> baseline:(t -> int) -> t list
(** Counters whose count exceeds what [baseline] says their owner holds. *)

val live : registry -> t list

val pp : Format.formatter -> t -> unit
