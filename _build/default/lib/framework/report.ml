(* Plain-text rendering: aligned tables, section headers, and ASCII bar
   charts for the figure reproductions. *)

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.sprintf "\n%s\n= %s =\n%s\n" bar title bar

let subsection title = Printf.sprintf "\n--- %s ---\n" title

(* Render rows with left-aligned, width-fitted columns. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c cell -> cell ^ String.make (List.nth widths c - String.length cell) ' ')
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows) ^ "\n"

(* Horizontal ASCII bar chart; values are scaled to [width] characters. *)
let bar_chart ?(width = 50) (points : (string * float) list) =
  let vmax = List.fold_left (fun a (_, v) -> Float.max a v) 1e-9 points in
  let lmax = List.fold_left (fun a (l, _) -> max a (String.length l)) 0 points in
  String.concat "\n"
    (List.map
       (fun (label, v) ->
         let n = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
         Printf.sprintf "%-*s | %s %g" lmax label (String.make (max n 0) '#') v)
       points)
  ^ "\n"

(* Log-scale scatter summary for Fig. 3 style distributions. *)
let log_buckets_chart (buckets : int array) =
  let labels = [| "1-9"; "10-99"; "100-999"; "1000-9999"; ">=10000" |] in
  bar_chart
    (Array.to_list (Array.mapi (fun i b -> (labels.(i), float_of_int b)) buckets))

let check b = if b then "yes" else "NO"
