(** Plain-text rendering for the reproduction harness: aligned tables,
    section headers and ASCII bar charts (the "figures"). *)

val section : string -> string
val subsection : string -> string

val table : header:string list -> string list list -> string
(** Width-fitted, left-aligned columns with a separator rule. *)

val bar_chart : ?width:int -> (string * float) list -> string
(** One [#]-bar per labelled value, scaled to [width] characters. *)

val log_buckets_chart : int array -> string
(** Render {!Callgraph.Analysis.log_histogram} buckets. *)

val check : bool -> string
(** "yes" / "NO" table cells. *)
