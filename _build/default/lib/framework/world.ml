(* A complete testbed: one simulated kernel plus the map registry, the
   helper bug database, the verifier configuration, and the table of loaded
   programs (for tail calls).  Every experiment builds a fresh world, so
   failures cannot contaminate each other. *)

module Kernel = Kernel_sim.Kernel
module Kver = Kerndata.Kver
module Bpf_map = Maps.Bpf_map
module Hctx = Helpers.Hctx
module Bugdb = Helpers.Bugdb

type t = {
  kernel : Kernel.t;
  maps : Bpf_map.Registry.t;
  bugs : Bugdb.t;
  mutable vconfig : Bpf_verifier.Verifier.config;
  progs : (int, Ebpf.Program.t) Hashtbl.t;
  mutable next_prog_id : int;
  (* the BPF_MAP_TYPE_PROG_ARRAY stand-in: tail-call index -> prog id *)
  prog_array : (int, int) Hashtbl.t;
}

let create ?(version = Kver.V5_18) ?vconfig () =
  let vconfig =
    match vconfig with
    | Some c -> c
    | None -> { (Bpf_verifier.Verifier.default_config ()) with Bpf_verifier.Verifier.version }
  in
  { kernel = Kernel.create (); maps = Bpf_map.Registry.create ();
    bugs = Bugdb.create ~version (); vconfig; progs = Hashtbl.create 4;
    next_prog_id = 1; prog_array = Hashtbl.create 4 }

let register_map t (def : Bpf_map.def) = Bpf_map.Registry.register t.maps t.kernel def

let new_hctx ?(owner = "bpf_prog") t =
  let hctx = Hctx.create ~owner ~kernel:t.kernel ~maps:t.maps ~bugs:t.bugs () in
  Hashtbl.iter (fun k v -> Hashtbl.replace hctx.Hctx.prog_array k v) t.prog_array;
  hctx

(* Wire a loaded program into the tail-call table at [index]. *)
let set_tail_call t ~index ~prog_id = Hashtbl.replace t.prog_array index prog_id

(* Populate a default environment: a couple of tasks and sockets for the
   task/sock helpers to find. *)
let populate t =
  let task = Kernel.add_task t.kernel ~pid:1234 ~tgid:1234 ~comm:"nginx" in
  Kernel.set_current t.kernel task;
  ignore (Kernel.add_task t.kernel ~pid:1300 ~tgid:1300 ~comm:"postgres");
  ignore (Kernel.add_sock t.kernel ~port:8080 ~state:Kernel_sim.Kobject.Established);
  ignore (Kernel.add_sock t.kernel ~port:8443 ~state:Kernel_sim.Kobject.Request);
  (* baseline the refcounts so health reports only extension-caused leaks *)
  Kernel.snapshot_refs t.kernel;
  t

let create_populated ?version ?vconfig () = populate (create ?version ?vconfig ())
