lib/framework/report.ml: Array Float List Printf String
