lib/framework/report.mli:
