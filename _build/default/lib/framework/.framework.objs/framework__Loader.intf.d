lib/framework/loader.mli: Bpf_verifier Bytes Ebpf Format Kernel_sim Runtime Rustlite World
