lib/framework/loader.ml: Array Bpf_verifier Ebpf Format Hashtbl Helpers Int64 Kernel_sim List Maps Option Runtime Rustlite World
