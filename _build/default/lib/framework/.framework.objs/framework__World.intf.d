lib/framework/world.mli: Bpf_verifier Ebpf Hashtbl Helpers Kerndata Kernel_sim Maps
