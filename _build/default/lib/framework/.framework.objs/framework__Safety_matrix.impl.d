lib/framework/safety_matrix.ml: Ebpf Format Helpers Kerndata Kernel_sim List Loader Maps Runtime Rustlite String World
