lib/framework/world.ml: Bpf_verifier Ebpf Hashtbl Helpers Kerndata Kernel_sim Maps
