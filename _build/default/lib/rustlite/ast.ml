(* The abstract syntax of rustlite: the safe-Rust-analogue extension
   language of §3.1.  It is deliberately *more* expressive than eBPF —
   unbounded loops, strings, arrays, Option, first-class kernel resources —
   because the whole point of the paper's proposal is that language safety
   plus runtime guards make that expressiveness admissible.

   There is no unsafe escape: the only way to touch the kernel is through
   the trusted kernel-crate builtins (Kcrate), mirroring the paper's
   "trusted kernel crate that provides the interface between the safe Rust
   of the extension program and the kernel". *)

type rkind =
  | R_task            (* a referenced task_struct (RAII: puts the refcount) *)
  | R_sock            (* a referenced socket (RAII: bpf_sk_release) *)
  | R_reservation     (* a ringbuf reservation (RAII: discard) *)
  | R_lock_guard      (* a held spinlock (RAII: unlock) *)
  | R_chunk           (* a pool-allocated chunk (§4 dynamic allocation;
                         RAII: returns the chunk to the pool) *)

let rkind_to_string = function
  | R_task -> "Task"
  | R_sock -> "Sock"
  | R_reservation -> "RbReservation"
  | R_lock_guard -> "LockGuard"
  | R_chunk -> "PoolChunk"

type ty =
  | T_unit
  | T_bool
  | T_i64
  | T_str
  | T_option of ty
  | T_array of ty * int
  | T_ref of ty        (* &T: shared borrow, only as a call argument *)
  | T_resource of rkind

let rec ty_to_string = function
  | T_unit -> "()"
  | T_bool -> "bool"
  | T_i64 -> "i64"
  | T_str -> "&str"
  | T_option t -> "Option<" ^ ty_to_string t ^ ">"
  | T_array (t, n) -> Printf.sprintf "[%s; %d]" (ty_to_string t) n
  | T_ref t -> "&" ^ ty_to_string t
  | T_resource k -> rkind_to_string k

(* Copy vs move semantics, as in Rust: resources and arrays move; scalars,
   strings and borrows copy.  Option is Copy iff its payload is. *)
let rec is_copy = function
  | T_unit | T_bool | T_i64 | T_str | T_ref _ -> true
  | T_option t -> is_copy t
  | T_array _ -> false
  | T_resource _ -> false

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | LAnd -> "&&" | LOr -> "||"

type expr =
  | Lit_unit
  | Lit_bool of bool
  | Lit_int of int64
  | Lit_str of string
  | Var of string
  | Let of { name : string; mut : bool; value : expr; body : expr }
  | Assign of string * expr
  | Binop of binop * expr * expr
  | Not of expr
  | Neg of expr
  | If of expr * expr * expr
  | While of expr * expr               (* value (); unbounded — allowed! *)
  | For of string * expr * expr * expr (* for i in lo..hi { body } *)
  | Seq of expr list                   (* value of the last expression *)
  | Some_ of expr
  | None_ of ty
  | Match_option of { scrutinee : expr; bind : string; some_branch : expr;
                      none_branch : expr }
  | Array_lit of expr list
  | Index of expr * expr               (* bounds-checked; OOB panics *)
  | Index_assign of string * expr * expr
  | Borrow of string                   (* &x, only valid as a call argument *)
  | Call of string * expr list         (* kernel-crate / builtin call *)
  | Panic of string
  | Str_len of expr
  | Str_parse of expr                  (* core::str::parse::<i64> -> Option *)
  | Str_cmp of expr * expr             (* -1 / 0 / 1 *)
  | Drop_ of string                    (* explicit early drop *)

(* Canonical serialization: what the trusted toolchain signs.  Any
   post-signing mutation of the AST changes this string and invalidates the
   signature. *)
let rec serialize (e : expr) : string =
  let list es = String.concat " " (List.map serialize es) in
  match e with
  | Lit_unit -> "(unit)"
  | Lit_bool b -> Printf.sprintf "(bool %b)" b
  | Lit_int v -> Printf.sprintf "(int %Ld)" v
  | Lit_str s -> Printf.sprintf "(str %S)" s
  | Var x -> Printf.sprintf "(var %s)" x
  | Let { name; mut; value; body } ->
    Printf.sprintf "(let %s %b %s %s)" name mut (serialize value) (serialize body)
  | Assign (x, e) -> Printf.sprintf "(assign %s %s)" x (serialize e)
  | Binop (op, a, b) ->
    Printf.sprintf "(binop %s %s %s)" (binop_to_string op) (serialize a) (serialize b)
  | Not e -> Printf.sprintf "(not %s)" (serialize e)
  | Neg e -> Printf.sprintf "(neg %s)" (serialize e)
  | If (c, t, f) ->
    Printf.sprintf "(if %s %s %s)" (serialize c) (serialize t) (serialize f)
  | While (c, b) -> Printf.sprintf "(while %s %s)" (serialize c) (serialize b)
  | For (x, lo, hi, b) ->
    Printf.sprintf "(for %s %s %s %s)" x (serialize lo) (serialize hi) (serialize b)
  | Seq es -> Printf.sprintf "(seq %s)" (list es)
  | Some_ e -> Printf.sprintf "(some %s)" (serialize e)
  | None_ t -> Printf.sprintf "(none %s)" (ty_to_string t)
  | Match_option { scrutinee; bind; some_branch; none_branch } ->
    Printf.sprintf "(match %s %s %s %s)" (serialize scrutinee) bind
      (serialize some_branch) (serialize none_branch)
  | Array_lit es -> Printf.sprintf "(array %s)" (list es)
  | Index (a, i) -> Printf.sprintf "(index %s %s)" (serialize a) (serialize i)
  | Index_assign (x, i, v) ->
    Printf.sprintf "(index= %s %s %s)" x (serialize i) (serialize v)
  | Borrow x -> Printf.sprintf "(borrow %s)" x
  | Call (f, args) -> Printf.sprintf "(call %s %s)" f (list args)
  | Panic msg -> Printf.sprintf "(panic %S)" msg
  | Str_len e -> Printf.sprintf "(strlen %s)" (serialize e)
  | Str_parse e -> Printf.sprintf "(parse %s)" (serialize e)
  | Str_cmp (a, b) -> Printf.sprintf "(strcmp %s %s)" (serialize a) (serialize b)
  | Drop_ x -> Printf.sprintf "(drop %s)" x
