(* The ownership checker: the affine-move half of "the Rust compiler takes
   the role of the verifier".

   Non-Copy values (kernel resources, arrays, Options of them) are *moved*
   when used as a value; any later use of the moved-out variable is a
   compile-time error.  This is what makes Kcrate.rb_submit's by-value
   argument a double-submit proof, and what guarantees that every acquired
   resource has exactly one owner for the RAII destructor to run against.

   Simplifications vs real Rust (documented in DESIGN.md): borrows are
   call-argument-scoped (they end when the call returns), so there is no
   lifetime inference; moving an outer variable inside a loop body is
   rejected outright (the loop may run more than once). *)

open Ast

type error = { what : string; where_ : string }

exception Own_error of error

let fail ~where_ fmt =
  Format.kasprintf (fun what -> raise (Own_error { what; where_ })) fmt

type state = Owned | Moved

type entry = { ty : ty; mut : bool; mutable st : state }

type env = (string * entry) list

let typeck_env (env : env) = List.map (fun (n, e) -> (n, (e.ty, e.mut))) env

let entry env x =
  match List.assoc_opt x env with
  | Some e -> e
  | None -> fail ~where_:x "unbound variable %s" x

(* Walk an expression, updating move states.  The result value itself is
   owned by the context. *)
let rec walk (env : env) (e : expr) : unit =
  match e with
  | Lit_unit | Lit_bool _ | Lit_int _ | Lit_str _ | None_ _ | Panic _ -> ()
  | Var x ->
    let en = entry env x in
    if not (is_copy en.ty) then begin
      if en.st = Moved then fail ~where_:x "use of moved value: %s" x;
      en.st <- Moved
    end
  | Let { name; mut; value; body } ->
    walk env value;
    let ty = Typeck.infer (typeck_env env) value in
    walk ((name, { ty; mut; st = Owned }) :: env) body
  | Assign (x, e) ->
    walk env e;
    let en = entry env x in
    (* re-initialization: the old value (if any) is dropped, x owns anew *)
    en.st <- Owned
  | Binop (_, a, b) ->
    walk env a;
    walk env b
  | Not e | Neg e | Some_ e | Str_len e | Str_parse e -> walk env e
  | Str_cmp (a, b) ->
    walk env a;
    walk env b
  | If (c, t, f) ->
    walk env c;
    branch_merge env [ t; f ]
  | While (c, body) ->
    walk env c;
    loop_body env body
  | For (x, lo, hi, body) ->
    walk env lo;
    walk env hi;
    loop_body ((x, { ty = T_i64; mut = false; st = Owned }) :: env) body
  | Seq es -> List.iter (walk env) es
  | Match_option { scrutinee; bind; some_branch; none_branch } ->
    walk env scrutinee;
    let payload =
      match Typeck.infer (typeck_env env) scrutinee with
      | T_option t -> t
      | _ -> T_unit (* typeck already validated; unreachable *)
    in
    (* the Some branch owns the payload; run both branches over the same
       starting states and merge *)
    let snapshot = List.map (fun (n, e) -> (n, e.st)) env in
    let env_some = (bind, { ty = payload; mut = false; st = Owned }) :: env in
    walk env_some some_branch;
    let after_some = List.map (fun (n, e) -> (n, e.st)) env in
    List.iter2 (fun (_, e) (_, st) -> e.st <- st) env snapshot;
    walk env none_branch;
    (* merge: moved anywhere -> moved *)
    List.iter2
      (fun (_, e) (_, st_some) -> if st_some = Moved then e.st <- Moved)
      env after_some
  | Array_lit es -> List.iter (walk env) es
  | Index (a, i) ->
    (* indexing borrows the array (elements are Copy); it must not move it *)
    (match a with
    | Var x ->
      let en = entry env x in
      if en.st = Moved then fail ~where_:x "use of moved value: %s" x
    | _ -> walk env a);
    walk env i
  | Index_assign (x, i, v) ->
    let _ = entry env x in
    walk env i;
    walk env v
  | Borrow x ->
    let en = entry env x in
    if en.st = Moved then fail ~where_:x "borrow of moved value: %s" x
  | Call (_, args) -> List.iter (walk env) args
  | Drop_ x ->
    let en = entry env x in
    if en.st = Moved then fail ~where_:x "drop of moved value: %s" x;
    en.st <- Moved

and branch_merge env branches =
  let snapshot = List.map (fun (_, e) -> e.st) env in
  let outcomes =
    List.map
      (fun b ->
        List.iter2 (fun (_, e) st -> e.st <- st) env snapshot;
        walk env b;
        List.map (fun (_, e) -> e.st) env)
      branches
  in
  List.iteri
    (fun i (_, e) ->
      if List.exists (fun states -> List.nth states i = Moved) outcomes then
        e.st <- Moved
      else e.st <- List.nth snapshot i)
    env

(* A loop body must not move variables owned outside it. *)
and loop_body env body =
  let snapshot = List.map (fun (_, e) -> e.st) env in
  walk env body;
  List.iteri
    (fun i (n, e) ->
      if List.nth snapshot i = Owned && e.st = Moved then
        fail ~where_:n "value %s moved inside a loop (may run more than once)" n)
    env

let check (e : expr) : (unit, error) result =
  match walk [] e with
  | () -> Ok ()
  | exception Own_error err -> Error err
  | exception Typeck.Type_error { what; where_ } -> Error { what; where_ }
