(* Pretty-printer from the AST back to the surface syntax the parser reads.
   [Parser.parse (Pretty.to_string e)] returns an AST equal to [e] (up to
   the block-sequencing normalisation) — a property the test suite checks. *)

open Ast

let prec_of = function
  | LOr -> 1 | LAnd -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | BOr -> 4 | BXor -> 5 | BAnd -> 6
  | Shl | Shr -> 7
  | Add | Sub -> 8
  | Mul | Div | Rem -> 9

let rec ty_name = function
  | T_i64 -> "i64"
  | T_bool -> "bool"
  | T_str -> "str"
  | T_unit -> "()"
  | T_option t -> "Option<" ^ ty_name t ^ ">"
  | T_resource k -> rkind_to_string k
  | T_ref t -> "&" ^ ty_name t
  | T_array (t, n) -> Printf.sprintf "[%s; %d]" (ty_name t) n

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\000' -> Buffer.add_string buf "\\0"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [ctx] is the ambient precedence: parenthesise when the node binds
   looser.  Statement positions use ctx = 0. *)
let rec emit buf ctx (e : expr) =
  let atom s = Buffer.add_string buf s in
  let paren_if cond body =
    if cond then begin
      atom "(";
      body ();
      atom ")"
    end
    else body ()
  in
  match e with
  | Lit_unit -> atom "()"
  | Lit_bool b -> atom (string_of_bool b)
  | Lit_int v -> if Int64.compare v 0L < 0 then atom (Printf.sprintf "(%Ld)" v) else atom (Int64.to_string v)
  | Lit_str s -> atom ("\"" ^ escape s ^ "\"")
  | Var x -> atom x
  | Binop (op, a, b) ->
    let p = prec_of op in
    paren_if (p < ctx) (fun () ->
        emit buf p a;
        atom (" " ^ binop_to_string op ^ " ");
        emit buf (p + 1) b)
  | Not e ->
    atom "!";
    emit buf 10 e
  | Neg e ->
    atom "-";
    emit buf 10 e
  | Borrow x -> atom ("&" ^ x)
  | Some_ e ->
    atom "Some(";
    emit buf 0 e;
    atom ")"
  | None_ t -> atom ("None:" ^ ty_name t)
  | Panic msg -> atom (Printf.sprintf "panic(\"%s\")" (escape msg))
  | Drop_ x -> atom (Printf.sprintf "drop(%s)" x)
  | Str_len e ->
    atom "len(";
    emit buf 0 e;
    atom ")"
  | Str_parse e ->
    atom "parse(";
    emit buf 0 e;
    atom ")"
  | Str_cmp (a, b) ->
    atom "strcmp(";
    emit buf 0 a;
    atom ", ";
    emit buf 0 b;
    atom ")"
  | Call (f, args) ->
    atom f;
    atom "(";
    List.iteri
      (fun i a ->
        if i > 0 then atom ", ";
        emit buf 0 a)
      args;
    atom ")"
  | Array_lit es ->
    atom "[";
    List.iteri
      (fun i a ->
        if i > 0 then atom ", ";
        emit buf 0 a)
      es;
    atom "]"
  | Index (a, i) ->
    emit buf 10 a;
    atom "[";
    emit buf 0 i;
    atom "]"
  | If (c, t, f) ->
    atom "if ";
    emit buf 0 c;
    atom " ";
    emit_block buf t;
    atom " else ";
    emit_block buf f
  | While (c, body) ->
    atom "while ";
    emit buf 0 c;
    atom " ";
    emit_block buf body
  | For (x, lo, hi, body) ->
    atom ("for " ^ x ^ " in ");
    emit buf 4 lo;
    atom "..";
    emit buf 4 hi;
    atom " ";
    emit_block buf body
  | Match_option { scrutinee; bind; some_branch; none_branch } ->
    atom "match ";
    emit buf 0 scrutinee;
    atom (" { Some(" ^ bind ^ ") => ");
    emit buf 0 some_branch;
    atom ", None => ";
    emit buf 0 none_branch;
    atom " }"
  | Let _ | Seq _ | Assign _ | Index_assign _ -> emit_block buf e

(* statement-shaped nodes render as blocks *)
and emit_block buf (e : expr) =
  let atom s = Buffer.add_string buf s in
  atom "{ ";
  emit_stmts buf e;
  atom " }"

and emit_stmts buf (e : expr) =
  let atom s = Buffer.add_string buf s in
  match e with
  | Let { name; mut; value; body } ->
    atom (Printf.sprintf "let %s%s = " (if mut then "mut " else "") name);
    emit buf 0 value;
    atom "; ";
    emit_stmts buf body
  | Seq [] -> atom "()"
  | Seq [ e ] -> emit_stmts buf e
  | Seq (e :: rest) ->
    emit_stmt_pos buf e;
    atom "; ";
    emit_stmts buf (Seq rest)
  | Assign (x, v) ->
    atom (x ^ " = ");
    emit buf 0 v
  | Index_assign (x, i, v) ->
    atom (x ^ "[");
    emit buf 0 i;
    atom "] = ";
    emit buf 0 v
  | other -> emit buf 0 other

and emit_stmt_pos buf e =
  match e with
  | Assign _ | Index_assign _ -> emit_stmts buf e
  | other -> emit buf 0 other

let to_string (e : expr) =
  let buf = Buffer.create 256 in
  emit_stmts buf e;
  Buffer.contents buf
