(** The rustlite surface-syntax parser (recursive descent over {!Lexer}).

    {[
      let mut count = 0;
      while count < 10 { count = count + 1; }
      if let Some(task) = task_current() { trace(task_comm(&task)); }
      match map_get("stats", 0) { Some(v) => v + 1, None => -1 }
      for i in 0..64 { total = total + i; }
    ]}

    A program is a block body; [let] scopes to the rest of its block; a
    trailing [;] makes a block unit-valued; block-ended statements (if /
    while / for / match) need no [;].  [None] defaults its payload type to
    [i64]; write [None:ty] to choose.  [len]/[parse]/[strcmp]/[panic]/[drop]
    are built-ins; any other [ident(...)] is a kernel-crate call. *)

type error = { msg : string; line : int; col : int }

exception Parse_error of error

val parse : string -> (Ast.expr, error) result
(** Total: never raises on any input. *)

val parse_exn : string -> Ast.expr
(** @raise Invalid_argument on parse errors (for tests and examples). *)
