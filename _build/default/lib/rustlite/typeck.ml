(* The type checker: the first half of the trusted userspace toolchain.
   Standard bidirectional-ish checking over Ast.ty; rejects ill-typed
   programs, which is Table 2's "Type safety / Language safety" row. *)

open Ast

type error = { what : string; where_ : string }

exception Type_error of error

let fail ~where_ fmt =
  Format.kasprintf (fun what -> raise (Type_error { what; where_ })) fmt

type env = (string * (ty * bool (* mut *))) list

let rec infer (env : env) (e : expr) : ty =
  match e with
  | Lit_unit -> T_unit
  | Lit_bool _ -> T_bool
  | Lit_int _ -> T_i64
  | Lit_str _ -> T_str
  | Var x -> (
    match List.assoc_opt x env with
    | Some (t, _) -> t
    | None -> fail ~where_:x "unbound variable %s" x)
  | Let { name; mut; value; body } ->
    let tv = infer env value in
    infer ((name, (tv, mut)) :: env) body
  | Assign (x, e) -> (
    match List.assoc_opt x env with
    | None -> fail ~where_:x "unbound variable %s" x
    | Some (t, mut) ->
      if not mut then fail ~where_:x "cannot assign to immutable %s" x;
      let te = infer env e in
      if te <> t then
        fail ~where_:x "assignment type mismatch: %s vs %s" (ty_to_string t)
          (ty_to_string te);
      T_unit)
  | Binop (op, a, b) -> (
    let ta = infer env a and tb = infer env b in
    match op with
    | Add | Sub | Mul | Div | Rem | BAnd | BOr | BXor | Shl | Shr ->
      if ta <> T_i64 || tb <> T_i64 then
        fail ~where_:(binop_to_string op) "arithmetic needs i64 operands";
      T_i64
    | Lt | Le | Gt | Ge ->
      if ta <> T_i64 || tb <> T_i64 then
        fail ~where_:(binop_to_string op) "comparison needs i64 operands";
      T_bool
    | Eq | Ne ->
      if ta <> tb then
        fail ~where_:(binop_to_string op) "equality on different types: %s vs %s"
          (ty_to_string ta) (ty_to_string tb);
      (match ta with
      | T_i64 | T_bool | T_str | T_unit -> ()
      | _ -> fail ~where_:(binop_to_string op) "equality only on scalars/strings");
      T_bool
    | LAnd | LOr ->
      if ta <> T_bool || tb <> T_bool then
        fail ~where_:(binop_to_string op) "logic needs bool operands";
      T_bool)
  | Not e ->
    if infer env e <> T_bool then fail ~where_:"!" "not needs bool";
    T_bool
  | Neg e ->
    if infer env e <> T_i64 then fail ~where_:"-" "neg needs i64";
    T_i64
  | If (c, t, f) ->
    if infer env c <> T_bool then fail ~where_:"if" "condition must be bool";
    let tt = infer env t and tf = infer env f in
    if tt <> tf then
      fail ~where_:"if" "branches disagree: %s vs %s" (ty_to_string tt) (ty_to_string tf);
    tt
  | While (c, body) ->
    if infer env c <> T_bool then fail ~where_:"while" "condition must be bool";
    ignore (infer env body);
    T_unit
  | For (x, lo, hi, body) ->
    if infer env lo <> T_i64 || infer env hi <> T_i64 then
      fail ~where_:"for" "range bounds must be i64";
    ignore (infer ((x, (T_i64, false)) :: env) body);
    T_unit
  | Seq [] -> T_unit
  | Seq es ->
    let rec go = function
      | [ last ] -> infer env last
      | e :: rest ->
        ignore (infer env e);
        go rest
      | [] -> T_unit
    in
    go es
  | Some_ e -> T_option (infer env e)
  | None_ t -> T_option t
  | Match_option { scrutinee; bind; some_branch; none_branch } -> (
    match infer env scrutinee with
    | T_option payload ->
      let ts = infer ((bind, (payload, false)) :: env) some_branch in
      let tn = infer env none_branch in
      if ts <> tn then
        fail ~where_:"match" "branches disagree: %s vs %s" (ty_to_string ts)
          (ty_to_string tn);
      ts
    | t -> fail ~where_:"match" "scrutinee must be Option, got %s" (ty_to_string t))
  | Array_lit [] -> fail ~where_:"array" "empty array literal has no type"
  | Array_lit (e0 :: rest) ->
    let t0 = infer env e0 in
    if not (is_copy t0) then fail ~where_:"array" "array elements must be Copy";
    List.iter
      (fun e ->
        if infer env e <> t0 then fail ~where_:"array" "heterogeneous array literal")
      rest;
    T_array (t0, List.length rest + 1)
  | Index (a, i) -> (
    if infer env i <> T_i64 then fail ~where_:"index" "index must be i64";
    match infer env a with
    | T_array (t, _) -> t
    | t -> fail ~where_:"index" "indexing a non-array %s" (ty_to_string t))
  | Index_assign (x, i, v) -> (
    if infer env i <> T_i64 then fail ~where_:"index" "index must be i64";
    match List.assoc_opt x env with
    | None -> fail ~where_:x "unbound variable %s" x
    | Some (T_array (t, _), mut) ->
      if not mut then fail ~where_:x "cannot assign into immutable array %s" x;
      if infer env v <> t then fail ~where_:x "array element type mismatch";
      T_unit
    | Some (t, _) -> fail ~where_:x "index-assign on non-array %s" (ty_to_string t))
  | Borrow x -> (
    match List.assoc_opt x env with
    | Some (t, _) -> T_ref t
    | None -> fail ~where_:x "unbound variable %s" x)
  | Call (f, args) -> (
    match Kcrate.signature f with
    | None -> fail ~where_:f "unknown kernel-crate function %s" f
    | Some (params, ret) ->
      if List.length params <> List.length args then
        fail ~where_:f "%s expects %d args, got %d" f (List.length params)
          (List.length args);
      List.iteri
        (fun i (param, arg) ->
          let ta = infer env arg in
          if ta <> param then
            fail ~where_:f "%s arg %d: expected %s, got %s" f (i + 1)
              (ty_to_string param) (ty_to_string ta))
        (List.combine params args);
      ret)
  | Panic _ -> T_unit (* diverges; unit is a sound enough approximation *)
  | Str_len e ->
    if infer env e <> T_str then fail ~where_:"len" "len needs &str";
    T_i64
  | Str_parse e ->
    if infer env e <> T_str then fail ~where_:"parse" "parse needs &str";
    T_option T_i64
  | Str_cmp (a, b) ->
    if infer env a <> T_str || infer env b <> T_str then
      fail ~where_:"strcmp" "strcmp needs &str";
    T_i64
  | Drop_ x -> (
    match List.assoc_opt x env with
    | Some _ -> T_unit
    | None -> fail ~where_:x "unbound variable %s" x)

let check (e : expr) : (ty, error) result =
  match infer [] e with t -> Ok t | exception Type_error err -> Error err
