(* The rustlite lexer: a hand-written scanner for the Rust-like surface
   syntax.  Tracks line/column for error reporting; supports line and block
   comments, decimal and hex integer literals, and escaped strings. *)

type token =
  | INT of int64
  | STRING of string
  | IDENT of string
  (* keywords *)
  | KW_LET | KW_MUT | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_IN | KW_MATCH
  | KW_SOME | KW_NONE | KW_TRUE | KW_FALSE | KW_PANIC | KW_DROP
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | ARROW (* => *) | DOTDOT
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | EQ (* = *) | EQEQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | EOF

let token_to_string = function
  | INT v -> Printf.sprintf "%Ld" v
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_LET -> "let" | KW_MUT -> "mut" | KW_IF -> "if" | KW_ELSE -> "else"
  | KW_WHILE -> "while" | KW_FOR -> "for" | KW_IN -> "in" | KW_MATCH -> "match"
  | KW_SOME -> "Some" | KW_NONE -> "None" | KW_TRUE -> "true" | KW_FALSE -> "false"
  | KW_PANIC -> "panic" | KW_DROP -> "drop"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | SEMI -> ";" | COLON -> ":" | ARROW -> "=>" | DOTDOT -> ".."
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | SHL -> "<<" | SHR -> ">>"
  | EQ -> "=" | EQEQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">"
  | GE -> ">=" | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | EOF -> "<eof>"

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let keywords =
  [ ("let", KW_LET); ("mut", KW_MUT); ("if", KW_IF); ("else", KW_ELSE);
    ("while", KW_WHILE); ("for", KW_FOR); ("in", KW_IN); ("match", KW_MATCH);
    ("Some", KW_SOME); ("None", KW_NONE); ("true", KW_TRUE); ("false", KW_FALSE);
    ("panic", KW_PANIC); ("drop", KW_DROP) ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let tokenize (src : string) : located list =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let out = ref [] in
  let emit tok l c = out := { tok; line = l; col = c } :: !out in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do advance () done
    else if c = '/' && peek 1 = Some '*' then begin
      advance (); advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance (); advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then raise (Lex_error ("unterminated comment", l0, c0))
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        advance (); advance ();
        while !i < n && is_hex src.[!i] do advance () done;
        let text = String.sub src start (!i - start) in
        match Int64.of_string_opt text with
        | Some v -> emit (INT v) l0 c0
        | None -> raise (Lex_error ("bad hex literal " ^ text, l0, c0))
      end
      else begin
        while !i < n && is_digit src.[!i] do advance () done;
        let text = String.sub src start (!i - start) in
        match Int64.of_string_opt text with
        | Some v -> emit (INT v) l0 c0
        | None -> raise (Lex_error ("bad integer literal " ^ text, l0, c0))
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do advance () done;
      let text = String.sub src start (!i - start) in
      match List.assoc_opt text keywords with
      | Some kw -> emit kw l0 c0
      | None -> emit (IDENT text) l0 c0
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        match src.[!i] with
        | '"' ->
          advance ();
          closed := true
        | '\\' -> (
          advance ();
          if !i >= n then raise (Lex_error ("unterminated string", l0, c0));
          (match src.[!i] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | '0' -> Buffer.add_char buf '\000'
          | e -> raise (Lex_error (Printf.sprintf "bad escape \\%c" e, !line, !col)));
          advance ())
        | ch ->
          Buffer.add_char buf ch;
          advance ()
      done;
      if not !closed then raise (Lex_error ("unterminated string", l0, c0));
      emit (STRING (Buffer.contents buf)) l0 c0
    end
    else begin
      let two t = advance (); advance (); emit t l0 c0 in
      let one t = advance (); emit t l0 c0 in
      match (c, peek 1) with
      | '=', Some '>' -> two ARROW
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NE
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '<', Some '<' -> two SHL
      | '>', Some '>' -> two SHR
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '.', Some '.' -> two DOTDOT
      | '=', _ -> one EQ
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '!', _ -> one BANG
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '^', _ -> one CARET
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | ':', _ -> one COLON
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, l0, c0))
    end
  done;
  emit EOF !line !col;
  List.rev !out
