(* The trusted kernel crate (§3.1): the only boundary between safe rustlite
   code and the kernel.  Every function here is a safe wrapper in the §3.2
   taxonomy's sense:

   - resource-returning wrappers (task_current, sk_lookup, ringbuf_reserve,
     lock) register an RAII destructor in the execution's resource table at
     acquisition time — the "record destructors on-the-fly" mechanism;
   - reference-taking wrappers (task_pid, task_storage_get, ...) accept
     &Task / &Sock, which the type system only lets a program produce by
     borrowing a live owned handle — the NULL-pointer class is
     unrepresentable (the bpf_task_storage_get wrap case);
   - sys_bpf_map_lookup exposes bpf_sys_bpf behind a *typed* command, so no
     raw union with a smuggled NULL ever reaches kernel code (the
     CVE-2022-2785 wrap case);
   - rb_submit takes its reservation *by value* (a move), so double submit
     is a compile-time use-after-move error, not a runtime UAF.

   Wrappers call the very same helper implementations the eBPF path uses —
   the comparison between the two frameworks is therefore about the
   *interface*, not about different kernels. *)

module Kmem = Kernel_sim.Kmem
module Kobject = Kernel_sim.Kobject
module Refcount = Kernel_sim.Refcount
module Oops = Kernel_sim.Oops
module Bpf_map = Maps.Bpf_map
module Ringbuf = Maps.Ringbuf
module Hctx = Helpers.Hctx
module Resources = Helpers.Resources
open Ast

type ctx = {
  hctx : Hctx.t;
  map_ids : (string * int) list; (* extension-declared map name -> map id *)
}

exception Panic of string

(* name -> (argument types, return type) *)
let signatures : (string * (ty list * ty)) list =
  [
    ("map_get", ([ T_str; T_i64 ], T_option T_i64));
    ("map_set", ([ T_str; T_i64; T_i64 ], T_unit));
    ("map_delete", ([ T_str; T_i64 ], T_bool));
    ("task_current", ([], T_option (T_resource R_task)));
    ("task_pid", ([ T_ref (T_resource R_task) ], T_i64));
    ("task_comm", ([ T_ref (T_resource R_task) ], T_str));
    ("task_storage_get", ([ T_str; T_ref (T_resource R_task); T_i64 ], T_option T_i64));
    ("task_storage_set", ([ T_str; T_ref (T_resource R_task); T_i64 ], T_unit));
    ("task_stack_sum", ([ T_ref (T_resource R_task) ], T_i64));
    ("sk_lookup", ([ T_i64 ], T_option (T_resource R_sock)));
    ("sk_port", ([ T_ref (T_resource R_sock) ], T_i64));
    ("ringbuf_reserve", ([ T_str; T_i64 ], T_option (T_resource R_reservation)));
    ("rb_write_i64", ([ T_ref (T_resource R_reservation); T_i64; T_i64 ], T_unit));
    ("rb_submit", ([ T_resource R_reservation ], T_unit)); (* consumes! *)
    ("lock", ([ T_str ], T_option (T_resource R_lock_guard)));
    ("probe_read", ([ T_i64 ], T_option T_i64));
    ("sys_bpf_map_lookup", ([ T_str; T_i64 ], T_option T_i64));
    ("trace", ([ T_str ], T_unit));
    ("trace_i64", ([ T_str; T_i64 ], T_unit));
    ("ktime", ([], T_i64));
    ("prandom", ([], T_i64));
    ("pid_tgid", ([], T_i64));
    ("smp_processor_id", ([], T_i64));
    ("skb_len", ([], T_i64));
    ("skb_byte", ([ T_i64 ], T_option T_i64));
    ("skb_set_mark", ([ T_i64 ], T_unit));
    ("signal_send", ([ T_i64 ], T_unit));
    (* §4 "dynamic memory allocation": a pre-allocated pool (usable from
       non-sleepable contexts) behind a safe RAII interface.  Allocation
       failure is an Option, never a fault; the chunk returns to the pool
       when its handle drops, so termination cannot leak pool memory. *)
    ("pool_alloc", ([], T_option (T_resource R_chunk)));
    ("chunk_write", ([ T_ref (T_resource R_chunk); T_i64; T_i64 ], T_unit));
    ("chunk_read", ([ T_ref (T_resource R_chunk); T_i64 ], T_i64));
    ("pool_available", ([], T_i64));
  ]

let signature name = List.assoc_opt name signatures

let find_map ctx name =
  match List.assoc_opt name ctx.map_ids with
  | None -> raise (Panic (Printf.sprintf "unknown map %S" name))
  | Some id -> (
    match Bpf_map.Registry.find ctx.hctx.maps id with
    | None -> raise (Panic (Printf.sprintf "map %S vanished" name))
    | Some m -> m)

let key_bytes (map : Bpf_map.t) k =
  let b = Bytes.make map.def.key_size '\000' in
  (* key_size may be 4; write the low bytes *)
  let tmp = Bytes.create 8 in
  Bytes.set_int64_le tmp 0 k;
  Bytes.blit tmp 0 b 0 (min 8 map.def.key_size);
  b

let read_i64_at ctx addr = Kmem.load ctx.hctx.kernel.mem ~size:8 ~addr ~context:"kcrate"
let write_i64_at ctx addr v =
  Kmem.store ctx.hctx.kernel.mem ~size:8 ~addr ~value:v ~context:"kcrate"

open Value

let v_opt = function None -> V_option None | Some v -> V_option (Some v)

(* checked multiply for offset computations: the §3.2 "integer arithmetic
   moves into safe code" case.  Overflow panics instead of wrapping. *)
let checked_mul a b =
  if Int64.equal a 0L || Int64.equal b 0L then 0L
  else
    let r = Int64.mul a b in
    if not (Int64.equal (Int64.div r a) b) then raise (Panic "integer overflow")
    else r

let call (ctx : ctx) (name : string) (args : Value.t list) : Value.t =
  let hctx = ctx.hctx in
  let kernel = hctx.kernel in
  match (name, args) with
  | "map_get", [ m; k ] -> (
    let map = find_map ctx (as_str m) in
    let key = key_bytes map (as_int k) in
    (* safe index computation with checked arithmetic (contrast with the
       buggy 32-bit truncation in the raw helper) *)
    ignore (checked_mul (as_int k) (Int64.of_int map.def.value_size));
    match Bpf_map.lookup map ~key with
    | None -> V_option None
    | Some addr -> v_opt (Some (V_int (read_i64_at ctx addr))))
  | "map_set", [ m; k; v ] -> (
    let map = find_map ctx (as_str m) in
    let key = key_bytes map (as_int k) in
    let value = Bytes.make map.def.value_size '\000' in
    let tmp = Bytes.create 8 in
    Bytes.set_int64_le tmp 0 (as_int v);
    Bytes.blit tmp 0 value 0 (min 8 map.def.value_size);
    match Bpf_map.update map kernel.mem ~key ~value with
    | Ok () -> V_unit
    | Error e -> raise (Panic ("map_set: " ^ Bpf_map.error_to_string e)))
  | "map_delete", [ m; k ] -> (
    let map = find_map ctx (as_str m) in
    match Bpf_map.delete map ~key:(key_bytes map (as_int k)) with
    | Ok () -> V_bool true
    | Error _ -> V_bool false)
  | "task_current", [] ->
    let task = kernel.current in
    Refcount.get kernel.refs task.Kobject.task_ref;
    let addr = Kobject.task_addr task in
    let _rid =
      Resources.acquire hctx.resources ~key:addr ~desc:"task ref (kcrate)"
        ~destroy:(fun () -> Refcount.put kernel.refs task.Kobject.task_ref)
    in
    v_opt (Some (V_resource { key = addr; kind = R_task; alive = true; obj_addr = addr }))
  | "task_pid", [ t ] ->
    let h = as_resource t in
    V_int (Kmem.load kernel.mem ~size:4 ~addr:h.obj_addr ~context:"kcrate:task_pid")
  | "task_comm", [ t ] ->
    let h = as_resource t in
    let task =
      List.find_opt (fun x -> Int64.equal (Kobject.task_addr x) h.obj_addr) kernel.tasks
    in
    V_str (match task with Some t -> t.Kobject.comm | None -> "?")
  | "task_storage_get", [ m; t; flags ] -> (
    let map = find_map ctx (as_str m) in
    let h = as_resource t in
    (* the wrapped helper runs with a guaranteed non-NULL task pointer *)
    let ret =
      Helpers.Helpers_task.task_storage_get hctx
        [| Int64.of_int map.Bpf_map.id; h.obj_addr; 0L; as_int flags |]
    in
    if Int64.equal ret 0L then V_option None
    else v_opt (Some (V_int (read_i64_at ctx ret))))
  | "task_storage_set", [ m; t; v ] -> (
    let map = find_map ctx (as_str m) in
    let h = as_resource t in
    let addr =
      Helpers.Helpers_task.task_storage_get hctx
        [| Int64.of_int map.Bpf_map.id; h.obj_addr; 0L; 1L (* create *) |]
    in
    if Int64.equal addr 0L then raise (Panic "task_storage_set: no storage")
    else begin
      write_i64_at ctx addr (as_int v);
      V_unit
    end)
  | "task_stack_sum", [ t ] ->
    (* the *simplified* bpf_get_task_stack: reference is held by the RAII
       handle the borrow came from; no get/put in the hot path to forget *)
    let h = as_resource t in
    let task =
      List.find_opt (fun x -> Int64.equal (Kobject.task_addr x) h.obj_addr) kernel.tasks
    in
    (match task with
    | None -> V_int 0L
    | Some task ->
      let sum = ref 0L in
      for i = 0 to (Kobject.kstack_size / 8) - 1 do
        sum :=
          Int64.add !sum
            (Kmem.load kernel.mem ~size:8
               ~addr:(Kmem.region_addr task.Kobject.kstack (i * 8))
               ~context:"kcrate:task_stack_sum")
      done;
      V_int !sum)
  | "sk_lookup", [ port ] -> (
    (* reuses the eBPF helper implementation, then wraps the acquired
       reference as an RAII resource *)
    let addr = Helpers.Helpers_sock.sk_lookup_tcp hctx [| as_int port |] in
    if Int64.equal addr 0L then V_option None
    else
      v_opt (Some (V_resource { key = addr; kind = R_sock; alive = true; obj_addr = addr })))
  | "sk_port", [ s ] ->
    let h = as_resource s in
    V_int (Kmem.load kernel.mem ~size:4 ~addr:h.obj_addr ~context:"kcrate:sk_port")
  | "ringbuf_reserve", [ m; size ] -> (
    let map = find_map ctx (as_str m) in
    let addr =
      Helpers.Helpers_ringbuf.ringbuf_reserve hctx
        [| Int64.of_int map.Bpf_map.id; as_int size; 0L |]
    in
    if Int64.equal addr 0L then V_option None
    else
      v_opt
        (Some (V_resource { key = addr; kind = R_reservation; alive = true; obj_addr = addr })))
  | "rb_write_i64", [ r; off; v ] ->
    let h = as_resource r in
    if not h.alive then raise (Panic "write to consumed reservation");
    Kmem.store kernel.mem ~size:8 ~addr:(Int64.add h.obj_addr (as_int off))
      ~value:(as_int v) ~context:"kcrate:rb_write";
    V_unit
  | "rb_submit", [ r ] ->
    (* consumes the reservation: ownership moved into the kernel *)
    let h = as_resource r in
    if not h.alive then raise (Panic "double submit (should be unreachable)");
    h.alive <- false;
    let rbs = Bpf_map.Registry.all hctx.maps |> List.filter_map Bpf_map.ringbuf in
    let ok =
      List.exists (fun rb -> match Ringbuf.submit rb h.key with Ok () -> true | Error _ -> false) rbs
    in
    if not ok then raise (Panic "rb_submit: not a reservation");
    ignore (Resources.forget_by_key hctx.resources h.key);
    V_unit
  | "lock", [ m ] -> (
    let map = find_map ctx (as_str m) in
    match map.Bpf_map.lock with
    | None -> V_option None
    | Some lock ->
      Kernel_sim.Spinlock.lock lock ~owner:hctx.owner;
      let key = Int64.of_int (0x10000 + map.Bpf_map.id) in
      let _rid =
        Resources.acquire hctx.resources ~key ~desc:"lock guard (kcrate)"
          ~destroy:(fun () -> Kernel_sim.Spinlock.unlock lock ~owner:hctx.owner)
      in
      v_opt (Some (V_resource { key; kind = R_lock_guard; alive = true; obj_addr = key })))
  | "probe_read", [ addr ] -> (
    match Kmem.load kernel.mem ~size:8 ~addr:(as_int addr) ~context:"kcrate:probe_read" with
    | v -> v_opt (Some (V_int v))
    | exception Oops.Kernel_oops _ -> V_option None)
  | "sys_bpf_map_lookup", [ m; k ] -> (
    (* the typed bpf_sys_bpf wrapper: the command is a struct, not a raw
       union, so there is no pointer field to smuggle NULL through *)
    let map = find_map ctx (as_str m) in
    match Bpf_map.lookup map ~key:(key_bytes map (as_int k)) with
    | None -> V_option None
    | Some addr -> v_opt (Some (V_int (read_i64_at ctx addr))))
  | "trace", [ s ] ->
    hctx.trace <- as_str s :: hctx.trace;
    V_unit
  | "trace_i64", [ s; v ] ->
    hctx.trace <- Printf.sprintf "%s%Ld" (as_str s) (as_int v) :: hctx.trace;
    V_unit
  | "ktime", [] -> V_int (Kernel_sim.Vclock.now kernel.clock)
  | "prandom", [] -> V_int (Int64.logand (Hctx.next_random hctx) 0xffff_ffffL)
  | "pid_tgid", [] -> V_int (Helpers.Helpers_task.get_current_pid_tgid hctx [||])
  | "smp_processor_id", [] -> V_int (Int64.of_int kernel.cpu)
  | "skb_len", [] ->
    V_int (match hctx.skb with None -> 0L | Some skb -> Int64.of_int skb.Kobject.len)
  | "skb_byte", [ off ] -> (
    match hctx.skb with
    | None -> V_option None
    | Some skb ->
      let o = Int64.to_int (as_int off) in
      if o < 0 || o >= skb.Kobject.len then V_option None
      else
        v_opt
          (Some
             (V_int
                (Kmem.load kernel.mem ~size:1
                   ~addr:(Int64.add (Kobject.skb_data skb) (as_int off))
                   ~context:"kcrate:skb_byte"))))
  | "skb_set_mark", [ v ] ->
    (match hctx.skb with
    | None -> ()
    | Some skb -> skb.Kobject.mark <- as_int v);
    V_unit
  | "signal_send", [ sig_ ] ->
    ignore (Helpers.Helpers_task.send_signal hctx [| as_int sig_ |]);
    V_unit
  | "pool_alloc", [] -> (
    match Kernel_sim.Mempool.alloc kernel.pool with
    | None -> V_option None
    | Some addr ->
      let _rid =
        Resources.acquire hctx.resources ~key:addr ~desc:"pool chunk (kcrate)"
          ~destroy:(fun () ->
            Kernel_sim.Mempool.free kernel.pool addr ~context:"kcrate chunk drop")
      in
      v_opt (Some (V_resource { key = addr; kind = R_chunk; alive = true; obj_addr = addr })))
  | "chunk_write", [ c; off; v ] ->
    let h = as_resource c in
    let o = as_int off in
    if Int64.compare o 0L < 0
       || Int64.compare (Int64.add o 8L)
            (Int64.of_int kernel.pool.Kernel_sim.Mempool.chunk_size) > 0
    then raise (Panic "chunk write out of bounds")
    else begin
      Kmem.store kernel.mem ~size:8 ~addr:(Int64.add h.obj_addr o) ~value:(as_int v)
        ~context:"kcrate:chunk_write";
      V_unit
    end
  | "chunk_read", [ c; off ] ->
    let h = as_resource c in
    let o = as_int off in
    if Int64.compare o 0L < 0
       || Int64.compare (Int64.add o 8L)
            (Int64.of_int kernel.pool.Kernel_sim.Mempool.chunk_size) > 0
    then raise (Panic "chunk read out of bounds")
    else V_int (Kmem.load kernel.mem ~size:8 ~addr:(Int64.add h.obj_addr o) ~context:"kcrate:chunk_read")
  | "pool_available", [] ->
    V_int (Int64.of_int (Kernel_sim.Mempool.available kernel.pool))
  | _ ->
    raise (Panic (Printf.sprintf "kcrate: bad call %s/%d" name (List.length args)))
