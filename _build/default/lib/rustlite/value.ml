(* Runtime values for rustlite evaluation. *)

type resource_handle = {
  key : int64;          (* the key in the Hctx resource table (addr/id) *)
  kind : Ast.rkind;
  mutable alive : bool; (* false once dropped or consumed *)
  obj_addr : int64;     (* underlying kernel object address, for accessors *)
}

type t =
  | V_unit
  | V_bool of bool
  | V_int of int64
  | V_str of string
  | V_option of t option
  | V_array of t array
  | V_ref of t          (* shared borrow: aliases the underlying value *)
  | V_resource of resource_handle

let rec pp ppf = function
  | V_unit -> Format.fprintf ppf "()"
  | V_bool b -> Format.fprintf ppf "%b" b
  | V_int v -> Format.fprintf ppf "%Ld" v
  | V_str s -> Format.fprintf ppf "%S" s
  | V_option None -> Format.fprintf ppf "None"
  | V_option (Some v) -> Format.fprintf ppf "Some(%a)" pp v
  | V_array a ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      (Array.to_list a)
  | V_ref v -> Format.fprintf ppf "&%a" pp v
  | V_resource h ->
    Format.fprintf ppf "%s#%Lx%s" (Ast.rkind_to_string h.kind) h.key
      (if h.alive then "" else " (dead)")

let as_int = function V_int v -> v | _ -> invalid_arg "expected int"
let as_bool = function V_bool b -> b | _ -> invalid_arg "expected bool"
let as_str = function V_str s -> s | _ -> invalid_arg "expected str"

let rec strip_ref = function V_ref v -> strip_ref v | v -> v

let as_resource v =
  match strip_ref v with
  | V_resource h -> h
  | _ -> invalid_arg "expected resource"
