lib/rustlite/kcrate.ml: Ast Bytes Helpers Int64 Kernel_sim List Maps Printf Value
