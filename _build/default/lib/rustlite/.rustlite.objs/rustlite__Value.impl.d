lib/rustlite/value.ml: Array Ast Format
