lib/rustlite/typeck.ml: Ast Format Kcrate List
