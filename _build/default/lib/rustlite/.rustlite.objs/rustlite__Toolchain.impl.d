lib/rustlite/toolchain.ml: Ast Format List Maps Ownck Printf Sign String Typeck
