lib/rustlite/ast.ml: List Printf String
