lib/rustlite/ownck.ml: Ast Format List Typeck
