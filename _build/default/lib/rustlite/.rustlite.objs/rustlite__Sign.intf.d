lib/rustlite/sign.mli:
