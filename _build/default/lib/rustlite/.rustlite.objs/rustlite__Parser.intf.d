lib/rustlite/parser.mli: Ast
