lib/rustlite/eval.ml: Array Ast Format Helpers Int64 Kcrate Kernel_sim List Printf Runtime String Value
