lib/rustlite/lexer.ml: Buffer Int64 List Printf String
