lib/rustlite/toolchain.mli: Ast Format Maps Ownck Sign Typeck
