(** Extension signing: the "decoupling static code analysis" half of §3.1.

    Self-contained SHA-256 and HMAC-SHA256 (no external dependencies); the
    shared-MAC trust model stands in for the asymmetric signatures and
    secure key bootstrap (IMA integration) the paper points at, without
    changing the load-time protocol. *)

val sha256 : string -> string
(** Raw 32-byte digest. *)

val to_hex : string -> string

val hmac : key:string -> string -> string
(** HMAC-SHA256, raw 32-byte MAC. *)

type signature = { digest_hex : string; mac_hex : string }

val sign : key:string -> string -> signature

val validate : key:string -> string -> signature -> bool
(** Recompute and compare; any payload or key change fails. *)
