(* The rustlite parser: recursive descent with precedence climbing, from
   the Lexer token stream to Ast.expr.

   Surface syntax (examples):

     let mut count = 0;
     while count < 10 { count = count + 1; }
     if let Some(task) = task_current() {
       trace(task_comm(&task));
     }
     match map_get("stats", 0) { Some(v) => v + 1, None => -1 }
     for i in 0..64 { total = total + i; }
     let xs = [1, 2, 3]; xs[2]
     panic("boom"); drop(sk);
     len("abc"), parse("42"), strcmp(a, b)     // built-ins
     None:i64                                  // None needs its payload type

   Blocks are expression sequences: `{ s1; s2; e }` evaluates to `e`; a
   trailing `;` makes the block unit-valued.  `let` scopes to the rest of
   its block. *)

open Ast
open Lexer

type error = { msg : string; line : int; col : int }

exception Parse_error of error

let fail (t : located) fmt =
  Format.kasprintf
    (fun msg -> raise (Parse_error { msg; line = t.line; col = t.col }))
    fmt

type stream = { mutable toks : located list }

let peek s = match s.toks with [] -> assert false | t :: _ -> t
let peek2 s = match s.toks with _ :: t :: _ -> Some t.tok | _ -> None

let next s =
  let t = peek s in
  (match s.toks with [] -> () | _ :: rest -> s.toks <- rest);
  t

let expect s tok what =
  let t = next s in
  if t.tok <> tok then fail t "expected %s, found %s" what (token_to_string t.tok)

let accept s tok = if (peek s).tok = tok then (ignore (next s); true) else false

(* type names, for None:ty *)
let rec parse_ty s =
  let t = next s in
  match t.tok with
  | IDENT "i64" -> T_i64
  | IDENT "bool" -> T_bool
  | IDENT "str" -> T_str
  | IDENT "Task" -> T_resource R_task
  | IDENT "Sock" -> T_resource R_sock
  | IDENT "RbReservation" -> T_resource R_reservation
  | IDENT "LockGuard" -> T_resource R_lock_guard
  | IDENT "PoolChunk" -> T_resource R_chunk
  | IDENT "Option" ->
    expect s LT "'<'";
    let inner = parse_ty s in
    expect s GT "'>'";
    T_option inner
  | LPAREN ->
    expect s RPAREN "')'";
    T_unit
  | other -> fail t "expected a type, found %s" (token_to_string other)

(* binary operator precedence (higher binds tighter) *)
let binop_of_token = function
  | OROR -> Some (LOr, 1)
  | ANDAND -> Some (LAnd, 2)
  | EQEQ -> Some (Eq, 3)
  | NE -> Some (Ne, 3)
  | LT -> Some (Lt, 3)
  | LE -> Some (Le, 3)
  | GT -> Some (Gt, 3)
  | GE -> Some (Ge, 3)
  | PIPE -> Some (BOr, 4)
  | CARET -> Some (BXor, 5)
  | AMP -> Some (BAnd, 6)
  | SHL -> Some (Shl, 7)
  | SHR -> Some (Shr, 7)
  | PLUS -> Some (Add, 8)
  | MINUS -> Some (Sub, 8)
  | STAR -> Some (Mul, 9)
  | SLASH -> Some (Div, 9)
  | PERCENT -> Some (Rem, 9)
  | _ -> None

let rec parse_expr s = parse_binary s 0

and parse_binary s min_prec =
  let lhs = ref (parse_unary s) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek s).tok with
    | Some (op, prec) when prec >= min_prec ->
      ignore (next s);
      let rhs = parse_binary s (prec + 1) in
      lhs := Binop (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary s =
  let t = peek s in
  match t.tok with
  | BANG ->
    ignore (next s);
    Not (parse_unary s)
  | MINUS ->
    ignore (next s);
    (* fold negative literals *)
    (match parse_unary s with
    | Lit_int v -> Lit_int (Int64.neg v)
    | e -> Neg e)
  | AMP -> (
    ignore (next s);
    let t2 = next s in
    match t2.tok with
    | IDENT x -> Borrow x
    | other -> fail t2 "expected a variable after '&', found %s" (token_to_string other))
  | _ -> parse_postfix s

and parse_postfix s =
  let e = ref (parse_primary s) in
  let continue_ = ref true in
  while !continue_ do
    match (peek s).tok with
    | LBRACKET ->
      ignore (next s);
      let idx = parse_expr s in
      expect s RBRACKET "']'";
      e := Index (!e, idx)
    | _ -> continue_ := false
  done;
  !e

and parse_call_args s =
  expect s LPAREN "'('";
  if accept s RPAREN then []
  else begin
    let rec go acc =
      let arg = parse_expr s in
      if accept s COMMA then go (arg :: acc)
      else begin
        expect s RPAREN "')'";
        List.rev (arg :: acc)
      end
    in
    go []
  end

and parse_primary s =
  let t = next s in
  match t.tok with
  | INT v -> Lit_int v
  | STRING str -> Lit_str str
  | KW_TRUE -> Lit_bool true
  | KW_FALSE -> Lit_bool false
  | KW_SOME ->
    expect s LPAREN "'('";
    let e = parse_expr s in
    expect s RPAREN "')'";
    Some_ e
  | KW_NONE ->
    (* None:ty gives the payload type; bare None defaults to i64 *)
    if accept s COLON then None_ (parse_ty s) else None_ T_i64
  | KW_PANIC -> (
    match parse_call_args s with
    | [ Lit_str msg ] -> Panic msg
    | _ -> fail t "panic takes one string literal")
  | KW_DROP -> (
    match parse_call_args s with
    | [ Var x ] -> Drop_ x
    | _ -> fail t "drop takes one variable")
  | KW_IF -> parse_if s t
  | KW_WHILE ->
    let cond = parse_expr s in
    let body = parse_block s in
    While (cond, body)
  | KW_FOR -> (
    let tv = next s in
    match tv.tok with
    | IDENT x ->
      expect s KW_IN "'in'";
      let lo = parse_expr s in
      expect s DOTDOT "'..'";
      let hi = parse_expr s in
      let body = parse_block s in
      For (x, lo, hi, body)
    | other -> fail tv "expected a loop variable, found %s" (token_to_string other))
  | KW_MATCH -> (
    let scrutinee = parse_expr s in
    expect s LBRACE "'{'";
    (* two arms, Some(x) and None, in either order *)
    let parse_arm () =
      let ta = next s in
      match ta.tok with
      | KW_SOME ->
        expect s LPAREN "'('";
        let tb = next s in
        let bind =
          match tb.tok with
          | IDENT x -> x
          | other -> fail tb "expected a binder, found %s" (token_to_string other)
        in
        expect s RPAREN "')'";
        expect s ARROW "'=>'";
        `Some_arm (bind, parse_expr s)
      | KW_NONE ->
        expect s ARROW "'=>'";
        `None_arm (parse_expr s)
      | other -> fail ta "expected Some(..) or None, found %s" (token_to_string other)
    in
    let a1 = parse_arm () in
    expect s COMMA "','";
    let a2 = parse_arm () in
    ignore (accept s COMMA);
    expect s RBRACE "'}'";
    match (a1, a2) with
    | `Some_arm (bind, some_branch), `None_arm none_branch
    | `None_arm none_branch, `Some_arm (bind, some_branch) ->
      Match_option { scrutinee; bind; some_branch; none_branch }
    | _ -> fail t "match needs one Some arm and one None arm")
  | LBRACKET ->
    (* array literal *)
    if accept s RBRACKET then fail t "empty array literal has no type"
    else begin
      let rec go acc =
        let e = parse_expr s in
        if accept s COMMA then go (e :: acc)
        else begin
          expect s RBRACKET "']'";
          List.rev (e :: acc)
        end
      in
      Array_lit (go [])
    end
  | LPAREN ->
    if accept s RPAREN then Lit_unit
    else begin
      let e = parse_expr s in
      expect s RPAREN "')'";
      e
    end
  | LBRACE ->
    s.toks <- { t with tok = LBRACE } :: s.toks;
    parse_block s
  | IDENT name -> (
    match (peek s).tok with
    | LPAREN -> (
      let args = parse_call_args s in
      (* built-ins with dedicated AST forms *)
      match (name, args) with
      | "len", [ e ] -> Str_len e
      | "parse", [ e ] -> Str_parse e
      | "strcmp", [ a; b ] -> Str_cmp (a, b)
      | _ -> Call (name, args))
    | _ -> Var name)
  | other -> fail t "unexpected %s" (token_to_string other)

and parse_if s t0 =
  (* `if let Some(x) = e { .. } [else { .. }]` or plain `if c { .. } else .. ` *)
  if (peek s).tok = KW_LET then begin
    ignore (next s);
    expect s KW_SOME "'Some'";
    expect s LPAREN "'('";
    let tb = next s in
    let bind =
      match tb.tok with
      | IDENT x -> x
      | other -> fail tb "expected a binder, found %s" (token_to_string other)
    in
    expect s RPAREN "')'";
    expect s EQ "'='";
    let scrutinee = parse_expr s in
    let some_branch = parse_block s in
    let none_branch = if accept s KW_ELSE then parse_else s else Lit_unit in
    Match_option { scrutinee; bind; some_branch; none_branch }
  end
  else begin
    let cond = parse_expr s in
    let then_ = parse_block s in
    let else_ = if accept s KW_ELSE then parse_else s else Lit_unit in
    ignore t0;
    If (cond, then_, else_)
  end

and parse_else s =
  if (peek s).tok = KW_IF then begin
    let t = next s in
    parse_if s t
  end
  else parse_block s

(* a block: `{ stmt* [expr] }`; `let` scopes over the remainder *)
and parse_block s =
  expect s LBRACE "'{'";
  parse_block_body s

and parse_block_body s =
  (* returns at the matching RBRACE *)
  let rec stmts () =
    if accept s RBRACE then Lit_unit
    else if (peek s).tok = KW_LET && peek2 s <> Some KW_SOME then begin
      ignore (next s);
      let mut = accept s KW_MUT in
      let tn = next s in
      let name =
        match tn.tok with
        | IDENT x -> x
        | other -> fail tn "expected a name, found %s" (token_to_string other)
      in
      expect s EQ "'='";
      let value = parse_expr s in
      expect s SEMI "';'";
      let body = stmts () in
      Let { name; mut; value; body }
    end
    else begin
      (* assignment / index-assignment lookahead *)
      let stmt =
        match ((peek s).tok, peek2 s) with
        | IDENT x, Some EQ ->
          ignore (next s);
          ignore (next s);
          let v = parse_expr s in
          Assign (x, v)
        | IDENT x, Some LBRACKET -> (
          (* could be `x[i] = v;` or the expression `x[i]` *)
          let save = s.toks in
          ignore (next s);
          ignore (next s);
          let idx = parse_expr s in
          expect s RBRACKET "']'";
          if accept s EQ then Index_assign (x, idx, parse_expr s)
          else begin
            s.toks <- save;
            parse_expr s
          end)
        | _ -> parse_expr s
      in
      let block_shaped =
        match stmt with
        | If _ | While _ | For _ | Match_option _ -> true
        | _ -> false
      in
      let continue_stmts () =
        let rest = stmts () in
        match rest with
        | Lit_unit -> Seq [ stmt; Lit_unit ]
        | Seq es -> Seq (stmt :: es)
        | e -> Seq [ stmt; e ]
      in
      if accept s SEMI then continue_stmts ()
      else if block_shaped && (peek s).tok <> RBRACE then
        (* block-ended statements need no ';' before the next statement *)
        continue_stmts ()
      else begin
        expect s RBRACE "'}' or ';'";
        stmt
      end
    end
  in
  stmts ()

let parse (src : string) : (expr, error) result =
  match
    (* a program is a block body: wrap the token stream in braces *)
    let raw = Lexer.tokenize src in
    let eof = List.nth raw (List.length raw - 1) in
    let body = List.filteri (fun i _ -> i < List.length raw - 1) raw in
    let s =
      { toks =
          ({ tok = LBRACE; line = 1; col = 1 } :: body)
          @ [ { eof with tok = RBRACE }; eof ] }
    in
    let e = parse_block s in
    (match (peek s).tok with
    | EOF -> ()
    | other -> fail (peek s) "trailing %s after program" (token_to_string other));
    e
  with
  | e -> Ok e
  | exception Parse_error err -> Error err
  | exception Lexer.Lex_error (msg, line, col) -> Error { msg; line; col }

let parse_exn src =
  match parse src with
  | Ok e -> e
  | Error { msg; line; col } ->
    invalid_arg (Printf.sprintf "parse error at %d:%d: %s" line col msg)
