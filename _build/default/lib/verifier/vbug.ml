(* Injectable verifier bugs: the executable counterparts of Table 1's
   "Verifier" column.  Each toggle reproduces the *class* of a documented
   verifier bug; the exploit corpus (Framework.Exploits) contains a program
   per toggle that passes verification with the bug on, is rejected with it
   off, and does real damage to the simulated kernel when run. *)

type t = {
  mutable ptr_arith_or_null : bool;
  (* CVE-2022-23222: ALU arithmetic permitted on *_OR_NULL pointers, so a
     NULL pointer can be biased past the null check.  Class: arbitrary
     read/write. *)
  mutable bounds_32bit_broken : bool;
  (* Insufficient bounds propagation in 32-bit ALU ops (cf. fix 3844d153:
     "insufficient bounds propagation from adjust_scalar_min_max_vals").
     Class: out-of-bounds access. *)
  mutable spill_ptr_leak : bool;
  (* Spilled pointer read back as an unknown scalar and storable to a map
     (cf. fixes a82fe085/7d3baf0a: "kernel address leakage in atomic ops").
     Class: kernel pointer leak. *)
  mutable prune_too_eager : bool;
  (* State pruning that ignores scalar bounds when judging equivalence
     (the recurring mark_precise bug family).  Class: out-of-bounds. *)
  mutable task_or_null_as_task : bool;
  (* A maybe-NULL object pointer accepted where a non-NULL one is required
     (the helper-side fix 1a9c72ad added the missing defence).  Class:
     null-pointer dereference. *)
  mutable spin_lock_path_miss : bool;
  (* Lock state dropped when comparing states at a join point, so a path
     that re-acquires the lock is accepted.  Class: deadlock/hang. *)
  mutable loop_inline_uaf : bool;
  (* fb4e3b33: use-after-free in the verifier's own bpf_loop inlining —
     the verifier itself is the crash victim.  Class: use-after-free. *)
}

let none () =
  { ptr_arith_or_null = false; bounds_32bit_broken = false; spill_ptr_leak = false;
    prune_too_eager = false; task_or_null_as_task = false; spin_lock_path_miss = false;
    loop_inline_uaf = false }

(* The verifier's own crash (simulated kernel bug inside the verifier). *)
exception Verifier_crash of string

let keys t =
  List.filter_map
    (fun (name, on) -> if on then Some name else None)
    [ ("vbug:cve-2022-23222-ptr-arith", t.ptr_arith_or_null);
      ("vbug:bounds-propagation-32bit", t.bounds_32bit_broken);
      ("vbug:atomic-ptr-leak", t.spill_ptr_leak);
      ("vbug:prune-too-eager", t.prune_too_eager);
      ("vbug:task-or-null-as-task", t.task_or_null_as_task);
      ("vbug:spin-lock-path-miss", t.spin_lock_path_miss);
      ("vbug:loop-inline-uaf", t.loop_inline_uaf) ]
