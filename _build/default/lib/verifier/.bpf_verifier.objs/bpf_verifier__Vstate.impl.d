lib/verifier/vstate.ml: Array Bool Format Int64 List Reg_state Tnum
