lib/verifier/reg_state.ml: Format Int64 Option Printf Tnum
