lib/verifier/verifier.ml: Array Buffer Cfg Ebpf Format Hashtbl Helpers Insn Int64 Kerndata List Maps Option Program Proto Reg_state Registry String Tnum Vbug Vstate
