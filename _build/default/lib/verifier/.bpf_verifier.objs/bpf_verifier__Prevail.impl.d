lib/verifier/prevail.ml: Array Cfg Ebpf Hashtbl Helpers Insn List Maps Option Program Queue Verifier Vstate
