lib/verifier/vbug.ml: List
