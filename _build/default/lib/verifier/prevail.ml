(* A PREVAIL-style userspace verifier: abstract interpretation with joins
   at control-flow merge points and widening on loops, instead of the
   in-kernel verifier's path enumeration (Gershuni et al., PLDI'19 — the
   §2.3 "userspace verifier" the paper cites).

   It reuses the exact same transfer functions as the in-kernel engine
   (Verifier.process_insn over Vstate), so the two differ only in
   exploration strategy:

   - the in-kernel engine walks every path (exponential in the worst case,
     hence the complexity budget) but is *path-sensitive*: it can prove
     facts that hold on each path separately;
   - this engine computes one invariant per basic block by joining incoming
     states (polynomial, no budget needed) but loses cross-path
     correlations, so it rejects some programs the in-kernel engine
     accepts — the classic precision/scalability trade, measured in
     bench exp-vcost.

   Feature scope, as in early PREVAIL: reference-acquiring, locking and
   callback-taking helpers are rejected up front ("unsupported"); bounded
   loops are handled natively by widening (no bpf_loop needed). *)

module Bpf_map = Maps.Bpf_map
open Ebpf

type stats = {
  blocks : int;
  fixpoint_iterations : int;
  insns_processed : int;
}

type verdict = (stats, Verifier.reject) result

let unsupported_helper (def : Helpers.Registry.def) =
  let proto = def.Helpers.Registry.proto in
  Helpers.Proto.acquires proto
  || Helpers.Proto.releases proto <> None
  || Helpers.Proto.locks proto || Helpers.Proto.unlocks proto
  || List.exists
       (fun a -> a = Helpers.Proto.Arg_callback_pc)
       proto.Helpers.Proto.args

(* How many times a block may be revisited before widening kicks in. *)
let widen_after = 6
(* Hard cap on fixpoint iterations (defence in depth; widening should
   terminate the chain long before). *)
let max_iterations = 10_000

let verify ?(config = Verifier.default_config ()) ~map_def (prog : Program.t) :
    verdict =
  let env = Verifier.make_env ~config ~map_def prog in
  let iterations = ref 0 in
  let insns = ref 0 in
  let n_blocks = ref 0 in
  match
    Verifier.check_registers env;
    Verifier.check_cfg env;
    (* feature gate *)
    Array.iteri
      (fun pc insn ->
        match insn with
        | Insn.Call id -> (
          match Helpers.Registry.find id with
          | Some def when unsupported_helper def ->
            Verifier.reject pc "helper %s is not supported by this verifier"
              def.Helpers.Registry.name
          | Some _ -> ()
          | None -> Verifier.reject pc "invalid func unknown#%d" id)
        | Insn.Call_sub _ ->
          Verifier.reject pc "BPF-to-BPF calls are not supported by this verifier"
        | _ -> ())
      prog.Program.insns;
    let cfg = Cfg.build prog.Program.insns in
    n_blocks := Cfg.block_count cfg;
    (* per-block input states and visit counts *)
    let block_in : (int, Vstate.t) Hashtbl.t = Hashtbl.create 16 in
    let visits : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let worklist = Queue.create () in
    Hashtbl.replace block_in 0 (Vstate.init ());
    Queue.add 0 worklist;
    let block_of pc =
      match Hashtbl.find_opt cfg.Cfg.blocks pc with
      | Some b -> b
      | None -> Verifier.reject pc "internal: no block at %d" pc
    in
    (* propagate [st] into the block at [succ_pc]; enqueue on change *)
    let flow_into succ_pc (st : Vstate.t) =
      match Hashtbl.find_opt block_in succ_pc with
      | None ->
        Hashtbl.replace block_in succ_pc (Vstate.copy st);
        Queue.add succ_pc worklist
      | Some old_ ->
        if Vstate.subsumes ~old_ st then () (* no new information *)
        else begin
          let joined = Vstate.join old_ st in
          let n = Option.value ~default:0 (Hashtbl.find_opt visits succ_pc) in
          Hashtbl.replace visits succ_pc (n + 1);
          let joined =
            if n >= widen_after then Vstate.widen ~prev:old_ joined else joined
          in
          Hashtbl.replace block_in succ_pc joined;
          Queue.add succ_pc worklist
        end
    in
    while not (Queue.is_empty worklist) do
      incr iterations;
      if !iterations > max_iterations then
        Verifier.reject 0 "abstract interpretation did not converge";
      let start_pc = Queue.pop worklist in
      let block = block_of start_pc in
      let st = Vstate.copy (Hashtbl.find block_in start_pc) in
      (* run the block's instructions on the abstract state *)
      let rec step pc =
        if pc > block.Cfg.end_pc then flow_into pc st
        else begin
          incr insns;
          match Verifier.process_insn env st ~pc with
          | `Continue next -> if next = pc + 1 then step next else flow_into next st
          | `Done -> ()
          | `Branch succs ->
            List.iter (fun (succ_pc, succ_st) -> flow_into succ_pc succ_st) succs
        end
      in
      step start_pc
    done
  with
  | () ->
    Ok { blocks = !n_blocks; fixpoint_iterations = !iterations;
         insns_processed = !insns }
  | exception Verifier.Reject (at_pc, reason) -> Error { Verifier.at_pc; reason }

let verify_with_registry ?config ~registry prog =
  let map_def id =
    Option.map (fun m -> m.Bpf_map.def) (Bpf_map.Registry.find registry id)
  in
  verify ?config ~map_def prog
