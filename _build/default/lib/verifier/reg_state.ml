(* Per-register abstract state, after Linux's [struct bpf_reg_state]:
   a register type, a fixed offset (for pointers), a tnum for the variable
   part, and signed/unsigned 64-bit bounds kept mutually consistent by
   [bounds_sync].  The ALU transfer functions are simplified ports of
   [adjust_scalar_min_max_vals]. *)

type rtype =
  | Not_init
  | Scalar
  | Ptr_ctx
  | Ptr_stack
  | Ptr_map_value of { map_id : int }
  | Ptr_map_value_or_null of { map_id : int }
  | Ptr_mem of { mem_size : int }
  | Ptr_mem_or_null of { mem_size : int }
  | Ptr_sock
  | Ptr_sock_or_null
  | Ptr_task
  | Ptr_task_or_null
  | Map_handle of { map_id : int }

type t = {
  rtype : rtype;
  off : int;           (* fixed offset component for pointers *)
  var_off : Tnum.t;    (* scalar value / variable offset *)
  smin : int64;
  smax : int64;
  umin : int64;
  umax : int64;
  id : int;            (* non-zero: null-check propagation group *)
  ref_obj_id : int;    (* non-zero: carries a reference obligation *)
}

let u_le a b = Int64.unsigned_compare a b <= 0
let u_lt a b = Int64.unsigned_compare a b < 0
let u_min a b = if u_le a b then a else b
let u_max a b = if u_le a b then b else a
let s_min a b = if Int64.compare a b <= 0 then a else b
let s_max a b = if Int64.compare a b <= 0 then b else a

let not_init =
  { rtype = Not_init; off = 0; var_off = Tnum.unknown; smin = Int64.min_int;
    smax = Int64.max_int; umin = 0L; umax = -1L; id = 0; ref_obj_id = 0 }

let unknown_scalar =
  { not_init with rtype = Scalar }

let const_scalar v =
  { rtype = Scalar; off = 0; var_off = Tnum.const v; smin = v; smax = v; umin = v;
    umax = v; id = 0; ref_obj_id = 0 }

let pointer ?(off = 0) ?(id = 0) ?(ref_obj_id = 0) rtype =
  { rtype; off; var_off = Tnum.zero; smin = 0L; smax = 0L; umin = 0L; umax = 0L;
    id; ref_obj_id }

let is_pointer t =
  match t.rtype with
  | Not_init | Scalar | Map_handle _ -> false
  | Ptr_ctx | Ptr_stack | Ptr_map_value _ | Ptr_map_value_or_null _ | Ptr_mem _
  | Ptr_mem_or_null _ | Ptr_sock | Ptr_sock_or_null | Ptr_task | Ptr_task_or_null ->
    true

let is_maybe_null t =
  match t.rtype with
  | Ptr_map_value_or_null _ | Ptr_mem_or_null _ | Ptr_sock_or_null | Ptr_task_or_null ->
    true
  | _ -> false

let is_scalar t = t.rtype = Scalar
let is_init t = t.rtype <> Not_init

let is_const t = is_scalar t && Tnum.is_const t.var_off
let const_value t = if is_const t then Tnum.to_const t.var_off else None

(* Keep tnum and the four bounds mutually consistent (the kernel's
   __update_reg_bounds / __reg_deduce_bounds / __reg_bound_offset trio). *)
let bounds_sync t =
  if t.rtype <> Scalar then t
  else begin
    (* learn unsigned bounds from the tnum *)
    let umin = u_max t.umin (Tnum.umin t.var_off) in
    let umax = u_min t.umax (Tnum.umax t.var_off) in
    (* deduce signed from unsigned when sign is fixed *)
    let smin, smax =
      if Int64.compare umax 0L >= 0 then
        (* umax fits in the non-negative signed range *)
        (s_max t.smin umin, s_min t.smax umax)
      else if Int64.compare umin 0L < 0 then
        (* whole range is in the "negative as signed" zone *)
        (s_max t.smin umin, s_min t.smax umax)
      else (t.smin, t.smax)
    in
    (* deduce unsigned from signed when the signed range has one sign *)
    let umin, umax =
      if Int64.compare smin 0L >= 0 then (u_max umin smin, u_min umax smax)
      else if Int64.compare smax 0L < 0 then (u_max umin smin, u_min umax smax)
      else (umin, umax)
    in
    (* feed the bounds back into the tnum *)
    let var_off = Tnum.intersect t.var_off (Tnum.range ~min:umin ~max:umax) in
    { t with var_off; smin; smax; umin; umax }
  end

let mark_unknown t = { unknown_scalar with id = 0; ref_obj_id = t.ref_obj_id }

(* 32-bit destination: zero-extend (the eBPF ALU32 semantics). *)
let zext32 t =
  if t.rtype <> Scalar then t
  else
    let var_off = Tnum.cast t.var_off ~size:4 in
    bounds_sync
      { t with var_off; umin = Tnum.umin var_off; umax = Tnum.umax var_off;
        smin = Tnum.umin var_off; smax = Tnum.umax var_off }

let signed_add_overflows a b =
  let r = Int64.add a b in
  if Int64.compare b 0L >= 0 then Int64.compare r a < 0 else Int64.compare r a > 0

let signed_sub_overflows a b =
  let r = Int64.sub a b in
  if Int64.compare b 0L <= 0 then Int64.compare r a < 0 else Int64.compare r a > 0

let unsigned_add_overflows a b = u_lt (Int64.add a b) a

(* --- scalar transfer functions (64-bit) --- *)

let scalar_add dst src =
  let smin, smax =
    if signed_add_overflows dst.smin src.smin || signed_add_overflows dst.smax src.smax
    then (Int64.min_int, Int64.max_int)
    else (Int64.add dst.smin src.smin, Int64.add dst.smax src.smax)
  in
  let umin, umax =
    if unsigned_add_overflows dst.umin src.umin || unsigned_add_overflows dst.umax src.umax
    then (0L, -1L)
    else (Int64.add dst.umin src.umin, Int64.add dst.umax src.umax)
  in
  bounds_sync
    { dst with var_off = Tnum.add dst.var_off src.var_off; smin; smax; umin; umax }

let scalar_sub dst src =
  let smin, smax =
    if signed_sub_overflows dst.smin src.smax || signed_sub_overflows dst.smax src.smin
    then (Int64.min_int, Int64.max_int)
    else (Int64.sub dst.smin src.smax, Int64.sub dst.smax src.smin)
  in
  let umin, umax =
    if u_lt dst.umin src.umax then (0L, -1L)
    else (Int64.sub dst.umin src.umax, Int64.sub dst.umax src.umin)
  in
  bounds_sync
    { dst with var_off = Tnum.sub dst.var_off src.var_off; smin; smax; umin; umax }

let scalar_mul dst src =
  let var_off = Tnum.mul dst.var_off src.var_off in
  (* only track bounds for small non-negative products, as the kernel does *)
  let fits =
    Int64.compare dst.umax 0x7fff_ffffL <= 0 && Int64.compare src.umax 0x7fff_ffffL <= 0
    && Int64.compare dst.smin 0L >= 0 && Int64.compare src.smin 0L >= 0
  in
  if fits then
    bounds_sync
      { dst with var_off; umin = Int64.mul dst.umin src.umin;
        umax = Int64.mul dst.umax src.umax; smin = Int64.mul dst.smin src.smin;
        smax = Int64.mul dst.smax src.smax }
  else bounds_sync { (mark_unknown dst) with var_off }

let scalar_and dst src =
  let var_off = Tnum.logand dst.var_off src.var_off in
  let umax = u_min (Tnum.umax var_off) (u_min dst.umax src.umax) in
  bounds_sync
    { dst with var_off; umin = Tnum.umin var_off; umax;
      smin = (if Int64.compare umax 0L >= 0 then 0L else Int64.min_int);
      smax = (if Int64.compare umax 0L >= 0 then umax else Int64.max_int) }

let scalar_or dst src =
  let var_off = Tnum.logor dst.var_off src.var_off in
  let umin = u_max (Tnum.umin var_off) (u_max dst.umin src.umin) in
  let umax = Tnum.umax var_off in
  bounds_sync
    { dst with var_off; umin; umax;
      smin = (if Int64.compare umax 0L >= 0 then 0L else Int64.min_int);
      smax = (if Int64.compare umax 0L >= 0 then umax else Int64.max_int) }

let scalar_xor dst src =
  let var_off = Tnum.logxor dst.var_off src.var_off in
  bounds_sync
    { dst with var_off; umin = Tnum.umin var_off; umax = Tnum.umax var_off;
      smin = Int64.min_int; smax = Int64.max_int }

let scalar_shift_const op dst shift =
  if shift < 0 || shift > 63 then mark_unknown dst
  else if shift = 0 then bounds_sync dst (* identity: keeps the sign bit *)
  else
    match op with
    | `Lsh ->
      let var_off = Tnum.lshift dst.var_off shift in
      let overflow = shift > 0 && u_lt (Int64.shift_right_logical (-1L) shift) dst.umax in
      if overflow then bounds_sync { (mark_unknown dst) with var_off }
      else
        bounds_sync
          { dst with var_off; umin = Int64.shift_left dst.umin shift;
            umax = Int64.shift_left dst.umax shift; smin = Int64.min_int;
            smax = Int64.max_int }
    | `Rsh ->
      let var_off = Tnum.rshift dst.var_off shift in
      bounds_sync
        { dst with var_off; umin = Int64.shift_right_logical dst.umin shift;
          umax = Int64.shift_right_logical dst.umax shift;
          smin = 0L; smax = Int64.max_int }
    | `Arsh ->
      let var_off = Tnum.arshift dst.var_off shift ~bits:64 in
      bounds_sync
        { dst with var_off; smin = Int64.shift_right dst.smin shift;
          smax = Int64.shift_right dst.smax shift; umin = 0L; umax = -1L }

let scalar_div_const dst c =
  if Int64.equal c 0L then const_scalar 0L (* eBPF runtime: div by zero yields 0 *)
  else
    bounds_sync
      { (mark_unknown dst) with
        umin = 0L;
        umax = (if Int64.compare c 0L > 0 then Int64.unsigned_div dst.umax c else -1L);
        smin = Int64.min_int; smax = Int64.max_int; var_off = Tnum.unknown }

let scalar_neg dst = bounds_sync { (mark_unknown dst) with var_off = Tnum.neg dst.var_off }

let pp_rtype ppf = function
  | Not_init -> Format.fprintf ppf "?"
  | Scalar -> Format.fprintf ppf "scalar"
  | Ptr_ctx -> Format.fprintf ppf "ctx"
  | Ptr_stack -> Format.fprintf ppf "fp"
  | Ptr_map_value { map_id } -> Format.fprintf ppf "map_value(map=%d)" map_id
  | Ptr_map_value_or_null { map_id } -> Format.fprintf ppf "map_value_or_null(map=%d)" map_id
  | Ptr_mem { mem_size } -> Format.fprintf ppf "mem(sz=%d)" mem_size
  | Ptr_mem_or_null { mem_size } -> Format.fprintf ppf "mem_or_null(sz=%d)" mem_size
  | Ptr_sock -> Format.fprintf ppf "sock"
  | Ptr_sock_or_null -> Format.fprintf ppf "sock_or_null"
  | Ptr_task -> Format.fprintf ppf "task"
  | Ptr_task_or_null -> Format.fprintf ppf "task_or_null"
  | Map_handle { map_id } -> Format.fprintf ppf "map_ptr(map=%d)" map_id

let pp ppf t =
  match t.rtype with
  | Not_init -> Format.fprintf ppf "?"
  | Scalar ->
    if is_const t then Format.fprintf ppf "%Ld" (Option.get (const_value t))
    else
      Format.fprintf ppf "scalar(umin=%Lu,umax=%Lu,smin=%Ld,smax=%Ld,var=%a)" t.umin
        t.umax t.smin t.smax Tnum.pp t.var_off
  | _ ->
    Format.fprintf ppf "%a%s%a" pp_rtype t.rtype
      (if t.off <> 0 then Printf.sprintf "%+d" t.off else "")
      (fun ppf v -> if not (Tnum.is_const v) then Format.fprintf ppf "+%a" Tnum.pp v)
      t.var_off

(* ---- join / widening (for the abstract-interpretation engine) ---- *)

(* Least upper bound of two register states.  Where the types disagree the
   result is Not_init — unusable, so any later use rejects (sound
   over-approximation). *)
let join (a : t) (b : t) : t =
  match (a.rtype, b.rtype) with
  | Scalar, Scalar ->
    bounds_sync
      { rtype = Scalar; off = 0; var_off = Tnum.union a.var_off b.var_off;
        smin = s_min a.smin b.smin; smax = s_max a.smax b.smax;
        umin = u_min a.umin b.umin; umax = u_max a.umax b.umax; id = 0;
        ref_obj_id = 0 }
  | ra, rb when ra = rb && a.off = b.off && Tnum.equal a.var_off b.var_off ->
    if is_pointer a then
      { a with umin = u_min a.umin b.umin; umax = u_max a.umax b.umax; id = 0 }
    else a
  | Ptr_map_value { map_id = ma }, Ptr_map_value { map_id = mb }
    when ma = mb && a.off = b.off ->
    (* same base, possibly different variable parts: join the bounds *)
    { a with var_off = Tnum.union a.var_off b.var_off;
      umin = u_min a.umin b.umin; umax = u_max a.umax b.umax; id = 0 }
  | _, _ -> not_init

(* Standard widening: any bound that moved since the previous iterate jumps
   to its extreme, guaranteeing termination of the fixpoint. *)
let widen ~(prev : t) (next : t) : t =
  if prev.rtype <> Scalar || next.rtype <> Scalar then next
  else
    let umin = if u_lt next.umin prev.umin then 0L else next.umin in
    let umax = if u_lt prev.umax next.umax then -1L else next.umax in
    let smin = if Int64.compare next.smin prev.smin < 0 then Int64.min_int else next.smin in
    let smax = if Int64.compare prev.smax next.smax < 0 then Int64.max_int else next.smax in
    let widened_bounds =
      not (Int64.equal umin next.umin) || not (Int64.equal umax next.umax)
      || not (Int64.equal smin next.smin) || not (Int64.equal smax next.smax)
    in
    if widened_bounds then
      { unknown_scalar with umin; umax; smin; smax; var_off = Tnum.unknown }
    else next
