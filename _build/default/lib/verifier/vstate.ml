(* A full verifier state: the 11 registers, the 512-byte stack, the set of
   acquired references, and the spin-lock flag; plus the state-subsumption
   test used for pruning (the kernel's [states_equal]/[regsafe]). *)

let stack_size = 512
let n_slots = stack_size / 8

type slot =
  | Slot_invalid
  | Slot_misc            (* initialized with unknown scalar bytes *)
  | Slot_zero
  | Slot_spill of Reg_state.t (* an 8-byte register spill *)

type ref_kind = Ref_sock | Ref_ringbuf | Ref_task

type t = {
  regs : Reg_state.t array; (* 11 *)
  stack : slot array;       (* [0] is fp-8 .. [n_slots-1] is fp-512 *)
  mutable refs : (int * ref_kind) list; (* ref_obj_id, kind *)
  mutable lock_held : bool;
}

let init () =
  let regs = Array.make 11 Reg_state.not_init in
  regs.(1) <- Reg_state.pointer Reg_state.Ptr_ctx;
  regs.(10) <- Reg_state.pointer Reg_state.Ptr_stack;
  { regs; stack = Array.make n_slots Slot_invalid; refs = []; lock_held = false }

let copy t =
  { regs = Array.copy t.regs; stack = Array.copy t.stack; refs = t.refs;
    lock_held = t.lock_held }

let reg t i = t.regs.(i)
let set_reg t i r = t.regs.(i) <- r

(* Mark every register and spilled slot carrying null-check id [id] as
   either the non-null pointer or the constant 0 (the kernel's
   mark_ptr_or_null_regs). *)
let mark_ptr_or_null t ~id ~is_null =
  let convert (r : Reg_state.t) =
    if r.Reg_state.id <> id then r
    else if is_null then Reg_state.const_scalar 0L
    else
      let rtype =
        match r.Reg_state.rtype with
        | Reg_state.Ptr_map_value_or_null { map_id } -> Reg_state.Ptr_map_value { map_id }
        | Ptr_mem_or_null { mem_size } -> Ptr_mem { mem_size }
        | Ptr_sock_or_null -> Ptr_sock
        | Ptr_task_or_null -> Ptr_task
        | other -> other
      in
      { r with rtype; id = 0 }
  in
  Array.iteri (fun i r -> t.regs.(i) <- convert r) t.regs;
  Array.iteri
    (fun i s -> match s with Slot_spill r -> t.stack.(i) <- Slot_spill (convert r) | _ -> ())
    t.stack;
  (* a NULL result never carried the reference: drop the obligation *)
  if is_null then begin
    match
      List.find_opt
        (fun (rid, _) ->
          (* the ref id equals the null-check id for acquire-returning helpers *)
          rid = id)
        t.refs
    with
    | Some (rid, _) -> t.refs <- List.filter (fun (r, _) -> r <> rid) t.refs
    | None -> ()
  end

(* Invalidate every register/slot referring to released reference [rid]. *)
let invalidate_ref t ~rid =
  let convert (r : Reg_state.t) =
    if r.Reg_state.ref_obj_id = rid then Reg_state.not_init else r
  in
  Array.iteri (fun i r -> t.regs.(i) <- convert r) t.regs;
  Array.iteri
    (fun i s -> match s with Slot_spill r -> t.stack.(i) <- Slot_spill (convert r) | _ -> ())
    t.stack

(* --- subsumption (pruning) --- *)

let u_le a b = Int64.unsigned_compare a b <= 0
let s_le a b = Int64.compare a b <= 0

(* Is [cur] safe given that [old] was verified?  I.e. does [old] describe a
   superset of [cur]'s possible values? *)
let regsafe ?(ignore_bounds = false) (old_ : Reg_state.t) (cur : Reg_state.t) =
  let open Reg_state in
  match (old_.rtype, cur.rtype) with
  | Not_init, _ -> true (* old tolerated anything in this reg *)
  | Scalar, Scalar ->
    ignore_bounds
    || (u_le old_.umin cur.umin && u_le cur.umax old_.umax
       && s_le old_.smin cur.smin && s_le cur.smax old_.smax
       && Tnum.subset old_.var_off cur.var_off)
  | Ptr_stack, Ptr_stack | Ptr_ctx, Ptr_ctx | Ptr_sock, Ptr_sock
  | Ptr_sock_or_null, Ptr_sock_or_null | Ptr_task, Ptr_task
  | Ptr_task_or_null, Ptr_task_or_null ->
    old_.off = cur.off && Tnum.equal old_.var_off cur.var_off
  | Ptr_map_value { map_id = a }, Ptr_map_value { map_id = b }
  | Ptr_map_value_or_null { map_id = a }, Ptr_map_value_or_null { map_id = b } ->
    a = b && old_.off = cur.off
    && u_le old_.umin cur.umin && u_le cur.umax old_.umax
    && Tnum.subset old_.var_off cur.var_off
  | Ptr_mem { mem_size = a }, Ptr_mem { mem_size = b }
  | Ptr_mem_or_null { mem_size = a }, Ptr_mem_or_null { mem_size = b } ->
    a = b && old_.off = cur.off
    && u_le old_.umin cur.umin && u_le cur.umax old_.umax
  | Map_handle { map_id = a }, Map_handle { map_id = b } -> a = b
  | _, _ -> false

let slot_safe ?ignore_bounds old_ cur =
  match (old_, cur) with
  | Slot_invalid, _ -> true
  | Slot_misc, (Slot_misc | Slot_zero | Slot_spill _) -> true
  | Slot_zero, Slot_zero -> true
  | Slot_spill o, Slot_spill c -> regsafe ?ignore_bounds o c
  | (Slot_misc | Slot_zero | Slot_spill _), _ -> false

(* [subsumes ~old cur]: pruning is allowed when the previously-verified
   state covers the current one.  [ignore_scalar_bounds] models the
   prune-too-eager verifier bug. *)
let subsumes ?(ignore_scalar_bounds = false) ?(ignore_lock = false) ~old_ cur =
  let ok = ref true in
  for i = 0 to 10 do
    if not (regsafe ~ignore_bounds:ignore_scalar_bounds old_.regs.(i) cur.regs.(i)) then
      ok := false
  done;
  for i = 0 to n_slots - 1 do
    if not (slot_safe ~ignore_bounds:ignore_scalar_bounds old_.stack.(i) cur.stack.(i))
    then ok := false
  done;
  !ok
  && List.length old_.refs = List.length cur.refs
  && (ignore_lock || Bool.equal old_.lock_held cur.lock_held)

let pp ppf t =
  for i = 0 to 10 do
    if Reg_state.is_init t.regs.(i) then
      Format.fprintf ppf "r%d=%a " i Reg_state.pp t.regs.(i)
  done;
  if t.lock_held then Format.fprintf ppf "lock ";
  if t.refs <> [] then Format.fprintf ppf "refs=%d" (List.length t.refs)

(* ---- join / widening over whole states (abstract interpretation) ---- *)

let join_slot a b =
  match (a, b) with
  | Slot_invalid, _ | _, Slot_invalid -> Slot_invalid
  | Slot_zero, Slot_zero -> Slot_zero
  | Slot_spill ra, Slot_spill rb -> (
    let j = Reg_state.join ra rb in
    match j.Reg_state.rtype with
    | Reg_state.Not_init ->
      (* incompatible spills: only safe as uninitialized *)
      Slot_invalid
    | Reg_state.Scalar when not (Reg_state.is_pointer ra) && not (Reg_state.is_pointer rb)
      -> Slot_spill j
    | _ -> Slot_spill j)
  | (Slot_misc | Slot_zero), (Slot_misc | Slot_zero) -> Slot_misc
  | Slot_misc, Slot_spill r | Slot_spill r, Slot_misc ->
    (* mixing raw bytes with a spill: scalar spills degrade to misc; a
       pointer spill must not be readable as bytes *)
    if Reg_state.is_pointer r then Slot_invalid else Slot_misc
  | Slot_zero, Slot_spill r | Slot_spill r, Slot_zero ->
    if Reg_state.is_pointer r then Slot_invalid else Slot_misc

(* The lub of two states; [None] never happens for reachable joins. *)
let join (a : t) (b : t) : t =
  let out = copy a in
  for i = 0 to 10 do
    out.regs.(i) <- Reg_state.join a.regs.(i) b.regs.(i)
  done;
  for i = 0 to n_slots - 1 do
    out.stack.(i) <- join_slot a.stack.(i) b.stack.(i)
  done;
  (* the AI engine only runs on lock/ref-free programs *)
  out.refs <- [];
  out.lock_held <- a.lock_held || b.lock_held;
  out

let widen ~(prev : t) (next : t) : t =
  let out = copy next in
  for i = 0 to 10 do
    out.regs.(i) <- Reg_state.widen ~prev:prev.regs.(i) next.regs.(i)
  done;
  out
