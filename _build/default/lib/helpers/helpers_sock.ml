(* Socket helpers: the reference-acquiring family the verifier must track.

   bpf_sk_lookup_tcp models the Table 1 reference-count leak (fix 3046a827:
   "Fix request_sock leak in sk lookup helpers"): with the bug active, a
   lookup that lands on a request_sock takes an extra reference that nothing
   ever releases. *)

module Kobject = Kernel_sim.Kobject
module Refcount = Kernel_sim.Refcount

(* bpf_sk_lookup_tcp(port) -> sock addr or 0; acquires a reference that the
   program must release with bpf_sk_release. *)
let sk_lookup_tcp (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 150L;
  let port = Int64.to_int args.(0) in
  match Hctx.Kernel.find_sock ctx.kernel ~port with
  | None -> 0L
  | Some sk ->
    let refs = ctx.kernel.refs in
    Refcount.get refs sk.Kobject.sock_ref;
    let addr = Kobject.sock_addr sk in
    let _rid =
      Resources.acquire ctx.resources ~key:addr ~desc:"sock ref"
        ~destroy:(fun () -> Refcount.put refs sk.Kobject.sock_ref)
    in
    if
      sk.Kobject.state = Kobject.Request
      && Bugdb.active ctx.bugs "hbug:sk-lookup-request-sock-leak"
    then
      (* the bug: an extra, untracked reference on request socks *)
      Refcount.get refs sk.Kobject.sock_ref;
    addr

let sk_lookup_udp = sk_lookup_tcp

(* bpf_sk_release(sock): drops the reference taken by a lookup. *)
let sk_release (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 50L;
  if Resources.release_by_key ctx.resources args.(0) then 0L else Errno.einval

let get_socket_cookie (ctx : Hctx.t) (_ : int64 array) =
  Hctx.charge ctx 20L;
  match ctx.skb with
  | None -> 0L
  | Some skb -> Int64.add 0x5eed_c00c_1eL skb.Kobject.mark
