(* probe-read helpers: arbitrary-address kernel reads with (normally)
   fault protection, plus the Table 1 out-of-bounds bug model
   ("hbug:probe-read-size-unchecked": the helper copies 8 bytes more than
   the verified destination size, overflowing the program's stack buffer). *)

module Kmem = Kernel_sim.Kmem
module Oops = Kernel_sim.Oops

(* bpf_probe_read_kernel(dst, size, unsafe_src) *)
let probe_read_kernel (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 120L;
  let size = Int64.to_int args.(1) in
  if size < 0 then Errno.einval
  else begin
    let over =
      if Bugdb.active ctx.bugs "hbug:probe-read-size-unchecked" then 8 else 0
    in
    (* the *source* access is fault-protected: bad addresses yield -EFAULT *)
    match
      Kmem.load_bytes ctx.kernel.mem ~addr:args.(2) ~len:size ~context:"bpf_probe_read_kernel"
    with
    | data ->
      let data =
        if over > 0 then Bytes.cat data (Bytes.make over '\xaa') else data
      in
      (* the *destination* write is not protected: an oversized copy smashes
         the program stack and faults for real *)
      Kmem.store_bytes ctx.kernel.mem ~addr:args.(0) ~src:data
        ~context:"bpf_probe_read_kernel";
      0L
    | exception Oops.Kernel_oops _ ->
      (* copy_from_kernel_nofault semantics: the read faults softly *)
      Errno.efault
  end

let probe_read_user = probe_read_kernel

(* bpf_probe_read_kernel_str(dst, size, unsafe_src) -> length incl. NUL *)
let probe_read_kernel_str (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 120L;
  let size = Int64.to_int args.(1) in
  if size <= 0 then Errno.einval
  else
    match
      Kmem.load_cstring ctx.kernel.mem ~addr:args.(2) ~max:(size - 1)
        ~context:"bpf_probe_read_kernel_str"
    with
    | s ->
      let out = Bytes.make (String.length s + 1) '\000' in
      Bytes.blit_string s 0 out 0 (String.length s);
      Kmem.store_bytes ctx.kernel.mem ~addr:args.(0) ~src:out
        ~context:"bpf_probe_read_kernel_str";
      Int64.of_int (String.length s + 1)
    | exception Oops.Kernel_oops _ -> Errno.efault
