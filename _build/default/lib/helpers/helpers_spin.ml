(* bpf_spin_lock / bpf_spin_unlock.

   The §2.1 example of verifier growth: supporting these two helpers meant
   teaching the verifier to prove "only one lock held at a time, released
   before exit".  At runtime the lock is a real (simulated) spinlock, so if
   a buggy verifier lets a double-acquire through, the kernel deadlocks for
   real; and a held lock at termination shows up in kernel health unless the
   runtime cleanup releases it. *)

module Bpf_map = Maps.Bpf_map
module Kmem = Kernel_sim.Kmem
module Spinlock = Kernel_sim.Spinlock

let region_contains (region : Kmem.region) addr =
  Int64.unsigned_compare addr region.Kmem.base >= 0
  && Int64.unsigned_compare addr
       (Int64.add region.Kmem.base (Int64.of_int region.Kmem.size))
     < 0

(* Find the lock of the map whose value region contains [addr] (spin locks
   live inside map values). *)
let find_lock (ctx : Hctx.t) addr =
  Bpf_map.Registry.all ctx.maps
  |> List.find_map (fun (map : Bpf_map.t) ->
         match (map.lock, map.storage) with
         | Some lock, Bpf_map.Array_storage region when region_contains region addr ->
           Some lock
         | Some lock, Bpf_map.Hash_storage (region, _) when region_contains region addr ->
           Some lock
         | _ -> None)

let spin_lock (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 30L;
  match find_lock ctx args.(0) with
  | None -> Errno.einval
  | Some lock ->
    Spinlock.lock lock ~owner:ctx.owner;
    let _rid =
      Resources.acquire ctx.resources ~key:args.(0) ~desc:"spin lock"
        ~destroy:(fun () -> Spinlock.unlock lock ~owner:ctx.owner)
    in
    0L

let spin_unlock (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 30L;
  match find_lock ctx args.(0) with
  | None -> Errno.einval
  | Some _lock ->
    if Resources.release_by_key ctx.resources args.(0) then 0L else Errno.einval
