lib/helpers/helpers_sock.ml: Array Bugdb Errno Hctx Int64 Kernel_sim Resources
