lib/helpers/proto.ml: List
