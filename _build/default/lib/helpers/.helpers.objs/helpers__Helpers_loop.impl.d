lib/helpers/helpers_loop.ml: Array Errno Hashtbl Hctx Int64 Kerndata Kernel_sim List
