lib/helpers/helpers_misc.ml: Array Buffer Hctx Int64 Kernel_sim Printf String
