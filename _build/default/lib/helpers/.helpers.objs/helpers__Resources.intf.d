lib/helpers/resources.mli: Format
