lib/helpers/helpers_string.ml: Array Buffer Bytes Char Errno Hctx Int64 Kernel_sim Printf String
