lib/helpers/helpers_task.ml: Array Bugdb Bytes Errno Hctx Int32 Int64 Kernel_sim List Maps Printf String
