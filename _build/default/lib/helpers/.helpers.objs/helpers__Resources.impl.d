lib/helpers/resources.ml: Format Int64 List
