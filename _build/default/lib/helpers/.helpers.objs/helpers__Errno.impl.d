lib/helpers/errno.ml: Maps
