lib/helpers/helpers_sys.ml: Array Bugdb Errno Hctx Int64 Kernel_sim Maps Printf String
