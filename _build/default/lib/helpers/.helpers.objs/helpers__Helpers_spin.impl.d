lib/helpers/helpers_spin.ml: Array Errno Hctx Int64 Kernel_sim List Maps Resources
