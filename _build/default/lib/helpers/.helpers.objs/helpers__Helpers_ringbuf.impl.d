lib/helpers/helpers_ringbuf.ml: Array Bugdb Errno Hctx Int64 Kernel_sim List Maps Resources
