lib/helpers/bugdb.mli: Kerndata
