lib/helpers/bugdb.ml: Kerndata List String
