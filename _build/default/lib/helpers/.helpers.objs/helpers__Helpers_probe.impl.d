lib/helpers/helpers_probe.ml: Array Bugdb Bytes Errno Hctx Int64 Kernel_sim String
