lib/helpers/helpers_skb.ml: Array Errno Hctx Int64 Kernel_sim
