lib/helpers/hctx.ml: Array Bugdb Hashtbl Int64 Kernel_sim List Maps Printf Resources
