lib/helpers/helpers_map.ml: Array Bugdb Bytes Char Errno Hctx Int32 Int64 Kernel_sim Maps
