(* Small leaf helpers — including bpf_get_current_pid_tgid's cousins at the
   harmless end of the Figure 3 complexity spectrum (call-graph size 1). *)

module Kmem = Kernel_sim.Kmem
module Vclock = Kernel_sim.Vclock

let ktime_get_ns (ctx : Hctx.t) (_ : int64 array) =
  Hctx.charge ctx 15L;
  Vclock.now ctx.kernel.clock

let ktime_get_boot_ns = ktime_get_ns

let jiffies64 (ctx : Hctx.t) (_ : int64 array) =
  Hctx.charge ctx 10L;
  Int64.div (Vclock.now ctx.kernel.clock) 4_000_000L (* HZ=250 *)

let get_prandom_u32 (ctx : Hctx.t) (_ : int64 array) =
  Hctx.charge ctx 15L;
  Int64.logand (Hctx.next_random ctx) 0xffff_ffffL

let get_smp_processor_id (ctx : Hctx.t) (_ : int64 array) =
  Hctx.charge ctx 10L;
  Int64.of_int ctx.kernel.cpu

let get_numa_node_id (ctx : Hctx.t) (_ : int64 array) =
  Hctx.charge ctx 10L;
  0L

(* bpf_trace_printk(fmt, fmt_size, arg1, arg2, arg3) *)
let trace_printk (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 200L;
  let fmt =
    Kmem.load_cstring ctx.kernel.mem ~addr:args.(0)
      ~max:(Int64.to_int args.(1)) ~context:"bpf_trace_printk"
  in
  let extra = [ args.(2); args.(3); args.(4) ] in
  let next = ref extra in
  let pop () =
    match !next with [] -> 0L | v :: rest -> next := rest; v
  in
  let buf = Buffer.create 32 in
  let i = ref 0 in
  while !i < String.length fmt do
    (if fmt.[!i] = '%' && !i + 1 < String.length fmt then begin
       (match fmt.[!i + 1] with
       | 'd' | 'u' -> Buffer.add_string buf (Int64.to_string (pop ()))
       | 'x' -> Buffer.add_string buf (Printf.sprintf "%Lx" (pop ()))
       | '%' -> Buffer.add_char buf '%'
       | c -> Buffer.add_char buf c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf fmt.[!i];
       incr i
     end)
  done;
  ctx.trace <- Buffer.contents buf :: ctx.trace;
  Int64.of_int (Buffer.length buf)
