(* String helpers: the poster children of §3.2's "retire" class.  Each of
   these exists only because restricted eBPF cannot express the loop or
   parse itself; rustlite implements all three natively (see
   Rustlite.Kcrate and the exp-retire bench). *)

module Kmem = Kernel_sim.Kmem

(* bpf_strtol(str, len, base_flags, res_ptr) -> consumed chars or -errno *)
let strtol_impl ~signed (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 100L;
  let len = Int64.to_int args.(1) in
  if len <= 0 then Errno.einval
  else begin
    let raw =
      Kmem.load_bytes ctx.kernel.mem ~addr:args.(0) ~len ~context:"bpf_strtol"
      |> Bytes.to_string
    in
    let s =
      match String.index_opt raw '\000' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let s = String.trim s in
    let negative = String.length s > 0 && s.[0] = '-' in
    if negative && not signed then Errno.einval
    else begin
      let body = if negative || (String.length s > 0 && s.[0] = '+')
        then String.sub s 1 (String.length s - 1) else s in
      let rec consume i acc =
        if i >= String.length body then (i, acc)
        else
          match body.[i] with
          | '0' .. '9' as c ->
            consume (i + 1) (Int64.add (Int64.mul acc 10L) (Int64.of_int (Char.code c - 48)))
          | _ -> (i, acc)
      in
      let consumed, value = consume 0 0L in
      if consumed = 0 then Errno.einval
      else begin
        let value = if negative then Int64.neg value else value in
        Kmem.store ctx.kernel.mem ~size:8 ~addr:args.(3) ~value ~context:"bpf_strtol";
        Int64.of_int (consumed + (if negative then 1 else 0))
      end
    end
  end

let strtol ctx args = strtol_impl ~signed:true ctx args
let strtoul ctx args = strtol_impl ~signed:false ctx args

(* bpf_strncmp(s1, s1_sz, s2) -> <0 / 0 / >0 *)
let strncmp (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 60L;
  let sz = Int64.to_int args.(1) in
  if sz <= 0 then Errno.einval
  else begin
    let s1 = Kmem.load_cstring ctx.kernel.mem ~addr:args.(0) ~max:sz ~context:"bpf_strncmp" in
    let s2 = Kmem.load_cstring ctx.kernel.mem ~addr:args.(2) ~max:sz ~context:"bpf_strncmp" in
    Int64.of_int (compare s1 s2)
  end

(* bpf_snprintf(out, out_size, fmt, data, data_len): minimal %d/%s/%x
   support, enough for the examples. *)
let snprintf (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 150L;
  let out_size = Int64.to_int args.(1) in
  if out_size <= 0 then Errno.einval
  else begin
    let fmt =
      Kmem.load_cstring ctx.kernel.mem ~addr:args.(2) ~max:256 ~context:"bpf_snprintf"
    in
    let data_len = Int64.to_int args.(4) in
    let next_arg = ref 0 in
    let read_arg () =
      if !next_arg * 8 >= data_len then 0L
      else begin
        let v =
          Kmem.load ctx.kernel.mem ~size:8
            ~addr:(Int64.add args.(3) (Int64.of_int (!next_arg * 8)))
            ~context:"bpf_snprintf"
        in
        incr next_arg;
        v
      end
    in
    let buf = Buffer.create 32 in
    let i = ref 0 in
    while !i < String.length fmt do
      (if fmt.[!i] = '%' && !i + 1 < String.length fmt then begin
         (match fmt.[!i + 1] with
         | 'd' -> Buffer.add_string buf (Int64.to_string (read_arg ()))
         | 'u' -> Buffer.add_string buf (Printf.sprintf "%Lu" (read_arg ()))
         | 'x' -> Buffer.add_string buf (Printf.sprintf "%Lx" (read_arg ()))
         | '%' -> Buffer.add_char buf '%'
         | c -> Buffer.add_char buf c);
         i := !i + 2
       end
       else begin
         Buffer.add_char buf fmt.[!i];
         incr i
       end)
    done;
    let s = Buffer.contents buf in
    let n = min (String.length s) (out_size - 1) in
    let out = Bytes.make (n + 1) '\000' in
    Bytes.blit_string s 0 out 0 n;
    Kmem.store_bytes ctx.kernel.mem ~addr:args.(0) ~src:out ~context:"bpf_snprintf";
    Int64.of_int n
  end
