(* bpf_loop and bpf_tail_call: the control-flow escape hatches.

   bpf_loop is the paper's prime §3.2 "retire" example ("merely provides a
   loop mechanism") and the engine of the §2.2 termination exploit: each
   level of nesting multiplies the iteration budget, giving "linear control
   over total runtime" and, with enough nesting, runtimes of millions of
   years — all while the verifier has pronounced the program terminating. *)

module Kver = Kerndata.Kver

(* The kernel's cap on a single bpf_loop invocation (BPF_MAX_LOOPS = 1<<23). *)
let max_loops = 1 lsl 23

(* The kernel's cap on chained tail calls (MAX_TAIL_CALL_CNT). *)
let max_tail_calls = 33

(* bpf_loop(nr_loops, callback_pc, callback_ctx, flags) -> iterations done *)
let loop (ctx : Hctx.t) (args : int64 array) =
  match ctx.call_subprog with
  | None -> Errno.enotsupp
  | Some call ->
    let nr = Int64.to_int (Int64.logand args.(0) 0xffff_ffffL) in
    if nr < 0 || nr > max_loops then Errno.e2big
    else begin
      let cb_pc = Int64.to_int args.(1) in
      let cb_ctx = args.(2) in
      ctx.loop_depth <- ctx.loop_depth + 1;
      let rec go i =
        if i >= nr then i
        else begin
          Hctx.charge ctx 20L;
          let ret = call cb_pc [| Int64.of_int i; cb_ctx; 0L; 0L; 0L |] in
          if Int64.equal ret 0L then go (i + 1) else i + 1
        end
      in
      let done_ = go 0 in
      ctx.loop_depth <- ctx.loop_depth - 1;
      Int64.of_int done_
    end

(* bpf_tail_call(ctx, prog_array, index): on success never returns — the
   runtime catches [Hctx.Tail_call] and jumps to the target program. *)
let tail_call (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 40L;
  let index = Int64.to_int args.(2) in
  match Hashtbl.find_opt ctx.prog_array index with
  | None -> Errno.enoent
  | Some prog_id -> raise (Hctx.Tail_call prog_id)


(* The bpf_timer family, modelled as one arming helper: the §2.1 "multitude
   of new verifier features" exhibit (timers forced the verifier to learn
   yet another callback shape and an in-map object kind).

   bpf_timer_start(delay_ns, callback_pc, callback_ctx): arms a timer that
   the kernel fires (simulated softirq) after the current invocation
   completes, once the virtual clock passes the deadline. *)
let timer_start (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 80L;
  let deadline = Int64.add (Kernel_sim.Vclock.now ctx.kernel.clock) args.(0) in
  if List.length ctx.timers >= 16 then Errno.e2big
  else begin
    ctx.timers <- ctx.timers @ [ (deadline, Int64.to_int args.(1), args.(2)) ];
    0L
  end

(* bpf_timer_cancel(callback_pc): disarms timers for that callback. *)
let timer_cancel (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 40L;
  let pc = Int64.to_int args.(0) in
  let before = List.length ctx.timers in
  ctx.timers <- List.filter (fun (_, cb, _) -> cb <> pc) ctx.timers;
  Int64.of_int (before - List.length ctx.timers)
