(* Task helpers, including two of the paper's Table 1 case studies:

   - bpf_task_storage_get: "Local storage helpers should check nullness of
     owner ptr passed" (fix 1a9c72ad) — with the bug active, a NULL task
     pointer is dereferenced and the kernel oopses; fixed, it returns 0.
   - bpf_get_task_stack: "Refcount task stack" (fix 06ab134c) — with the
     bug active the helper takes a task reference and never releases it
     (observable reference-count leak); fixed, the reference is scoped. *)

module Kmem = Kernel_sim.Kmem
module Kobject = Kernel_sim.Kobject
module Refcount = Kernel_sim.Refcount
module Bpf_map = Maps.Bpf_map

let get_current_pid_tgid (ctx : Hctx.t) (_ : int64 array) =
  Hctx.charge ctx 10L;
  let task = ctx.kernel.current in
  Int64.logor
    (Int64.shift_left (Int64.of_int task.Kobject.tgid) 32)
    (Int64.of_int task.Kobject.pid)

let get_current_uid_gid (ctx : Hctx.t) (_ : int64 array) =
  Hctx.charge ctx 10L;
  0L

let get_current_comm (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 30L;
  let size = Int64.to_int args.(1) in
  if size <= 0 then Errno.einval
  else begin
    let comm = ctx.kernel.current.Kobject.comm in
    let out = Bytes.make size '\000' in
    Bytes.blit_string comm 0 out 0 (min (String.length comm) (size - 1));
    Kmem.store_bytes ctx.kernel.mem ~addr:args.(0) ~src:out ~context:"bpf_get_current_comm";
    0L
  end

let get_current_task (ctx : Hctx.t) (_ : int64 array) =
  Hctx.charge ctx 10L;
  Kobject.task_addr ctx.kernel.current

let find_task (ctx : Hctx.t) addr =
  List.find_opt (fun t -> Int64.equal (Kobject.task_addr t) addr) ctx.kernel.tasks

(* bpf_task_storage_get(map, task_ptr, value, flags) *)
let task_storage_get (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 90L;
  let map_handle = args.(0) and task_ptr = args.(1) in
  let buggy = Bugdb.active ctx.bugs "hbug:task-storage-null-owner" in
  if Int64.equal task_ptr 0L && not buggy then Errno.einval
  else
    (* With the bug active and a NULL owner, the helper dereferences the
       pointer: reading pid from offset 0 of a NULL task_struct. *)
    let _pid_probe =
      if Int64.equal task_ptr 0L then
        Kmem.load ctx.kernel.mem ~size:4 ~addr:task_ptr ~context:"bpf_task_storage_get"
      else 0L
    in
    match find_task ctx task_ptr with
    | None -> 0L
    | Some task -> (
      match Bpf_map.Registry.find ctx.maps (Int64.to_int map_handle) with
      | None -> 0L
      | Some map -> (
        let key = Bytes.make map.def.key_size '\000' in
        Bytes.set_int32_le key 0 (Int32.of_int task.Kobject.pid);
        match Bpf_map.lookup map ~key with
        | Some addr -> addr
        | None ->
          (* BPF_LOCAL_STORAGE_GET_F_CREATE semantics when flags=1 *)
          if Int64.equal args.(3) 1L then begin
            let zero = Bytes.make map.def.value_size '\000' in
            match Bpf_map.update map ctx.kernel.mem ~key ~value:zero with
            | Ok () -> (
              match Bpf_map.lookup map ~key with Some a -> a | None -> 0L)
            | Error _ -> 0L
          end
          else 0L))

let task_storage_delete (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 60L;
  match find_task ctx args.(1) with
  | None -> Errno.enoent
  | Some task -> (
    match Bpf_map.Registry.find ctx.maps (Int64.to_int args.(0)) with
    | None -> Errno.einval
    | Some map -> (
      let key = Bytes.make map.def.key_size '\000' in
      Bytes.set_int32_le key 0 (Int32.of_int task.Kobject.pid);
      match Bpf_map.delete map ~key with
      | Ok () -> 0L
      | Error e -> Errno.of_map_error e))

(* bpf_get_task_stack(task_ptr, buf, size, flags) *)
let get_task_stack (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 200L;
  match find_task ctx args.(0) with
  | None -> Errno.einval
  | Some task ->
    let size = Int64.to_int args.(2) in
    if size < 0 then Errno.einval
    else begin
      if Bugdb.active ctx.bugs "hbug:get-task-stack-no-ref" then
        (* the bug: a reference is taken for the duration of the walk but
           never dropped — a permanent leak on every call *)
        Refcount.get ctx.kernel.refs task.Kobject.task_ref
      else begin
        (* fixed behaviour: scoped get/put around the stack walk *)
        Refcount.get ctx.kernel.refs task.Kobject.task_ref;
        Refcount.put ctx.kernel.refs task.Kobject.task_ref
      end;
      let n = min size Kobject.kstack_size in
      let data =
        Kmem.load_bytes ctx.kernel.mem ~addr:task.Kobject.kstack.base ~len:n
          ~context:"bpf_get_task_stack"
      in
      Kmem.store_bytes ctx.kernel.mem ~addr:args.(1) ~src:data
        ~context:"bpf_get_task_stack";
      Int64.of_int n
    end

(* bpf_send_signal(sig): side effect recorded as a kernel stat *)
let send_signal (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 40L;
  Hctx.Kernel.bump ctx.kernel (Printf.sprintf "signal:%Ld" args.(0));
  0L
