(* The runtime resource table: the paper's alternative to stack unwinding.

   §3.1: "We can record allocated kernel resources and their destructors
   on-the-fly during program execution.  When termination is needed, the
   destructors of allocated resources are invoked to release the resources.
   Since only the trusted kernel crate ... is responsible for implementing
   the aforementioned destructors, all the cleanup code is trusted and
   guaranteed not to fail."

   Destructors here are exactly that: closures installed by trusted helper
   wrappers (never by user code), run in LIFO order on termination. *)

type resource = {
  rid : int;
  key : int64;          (* runtime value identifying the resource (addr/id) *)
  desc : string;
  destroy : unit -> unit;
}

type t = {
  mutable items : resource list; (* newest first: LIFO cleanup order *)
  mutable next_rid : int;
  mutable acquired_total : int;
  mutable released_by_program : int;
  mutable destroyed_by_cleanup : int;
}

let create () =
  { items = []; next_rid = 1; acquired_total = 0; released_by_program = 0;
    destroyed_by_cleanup = 0 }

let acquire t ~key ~desc ~destroy =
  let r = { rid = t.next_rid; key; desc; destroy } in
  t.next_rid <- t.next_rid + 1;
  t.acquired_total <- t.acquired_total + 1;
  t.items <- r :: t.items;
  r.rid

let find_by_key t key = List.find_opt (fun r -> Int64.equal r.key key) t.items

(* The program released the resource itself (e.g. called sk_release): run
   the destructor and drop the record. *)
let release_by_key t key =
  match find_by_key t key with
  | None -> false
  | Some r ->
    t.items <- List.filter (fun x -> x.rid <> r.rid) t.items;
    t.released_by_program <- t.released_by_program + 1;
    r.destroy ();
    true

(* Forget a resource without running its destructor (the underlying object
   was consumed by other means, e.g. a submitted ringbuf record). *)
let forget_by_key t key =
  match find_by_key t key with
  | None -> false
  | Some r ->
    t.items <- List.filter (fun x -> x.rid <> r.rid) t.items;
    t.released_by_program <- t.released_by_program + 1;
    true

let outstanding t = List.length t.items

(* Safe termination: run every remaining destructor, LIFO.  Destructors are
   trusted kernel-crate code; a raise here would be a kernel bug, so it is
   deliberately not caught. *)
let cleanup t =
  let items = t.items in
  t.items <- [];
  List.iter
    (fun r ->
      t.destroyed_by_cleanup <- t.destroyed_by_cleanup + 1;
      r.destroy ())
    items;
  List.length items

let pp ppf t =
  Format.fprintf ppf "resources: %d outstanding (%d acquired, %d released, %d cleaned)"
    (outstanding t) t.acquired_total t.released_by_program t.destroyed_by_cleanup
