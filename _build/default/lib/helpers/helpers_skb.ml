(* Packet-access helpers.  Packet payloads are reached through these rather
   than direct packet pointers (the bpf_skb_load_bytes route), which keeps
   ctx fields scalar; see Program's ctx descriptor commentary. *)

module Kmem = Kernel_sim.Kmem
module Kobject = Kernel_sim.Kobject

(* bpf_skb_load_bytes(offset, to, len) *)
let skb_load_bytes (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 60L;
  match ctx.skb with
  | None -> Errno.einval
  | Some skb ->
    let off = Int64.to_int args.(0) and len = Int64.to_int args.(2) in
    if off < 0 || len <= 0 || off + len > skb.Kobject.len then Errno.efault
    else begin
      let data =
        Kmem.load_bytes ctx.kernel.mem
          ~addr:(Int64.add (Kobject.skb_data skb) (Int64.of_int off))
          ~len ~context:"bpf_skb_load_bytes"
      in
      Kmem.store_bytes ctx.kernel.mem ~addr:args.(1) ~src:data
        ~context:"bpf_skb_load_bytes";
      0L
    end

(* bpf_skb_store_bytes(offset, from, len, flags) *)
let skb_store_bytes (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 80L;
  match ctx.skb with
  | None -> Errno.einval
  | Some skb ->
    let off = Int64.to_int args.(0) and len = Int64.to_int args.(2) in
    if off < 0 || len <= 0 || off + len > skb.Kobject.len then Errno.efault
    else begin
      let data =
        Kmem.load_bytes ctx.kernel.mem ~addr:args.(1) ~len
          ~context:"bpf_skb_store_bytes"
      in
      Kmem.store_bytes ctx.kernel.mem
        ~addr:(Int64.add (Kobject.skb_data skb) (Int64.of_int off))
        ~src:data ~context:"bpf_skb_store_bytes";
      0L
    end
