(* bpf_sys_bpf: the widest escape hatch in the helper table (4845 call-graph
   nodes in the paper's Figure 3 census) and the subject of the §2.2 safety
   experiment.

   The helper exposes a subset of the bpf(2) syscall.  Its attr argument is
   a union; the verifier checks only that the pointer covers attr_size bytes
   — it does not inspect the union's *fields*.  CVE-2022-2785: a NULL
   pointer smuggled in a union field is dereferenced in kernel context,
   crashing the kernel (and, steered at a chosen address, yielding an
   arbitrary kernel read).

   attr layout used here (a faithful miniature of union bpf_attr):
     cmd = MAP_CREATE (0):  [map_type:u32@0][key_size:u32@4][value_size:u32@8]
                            [max_entries:u32@12]
     cmd = MAP_LOOKUP (1):  [map_fd:u32@0][key_ptr:u64@8][value_ptr:u64@16]
     cmd = PROG_LOAD  (5):  rejected (-EPERM) as in the real allowlist
*)

module Kmem = Kernel_sim.Kmem
module Bpf_map = Maps.Bpf_map

(* The post-fix helper validates that attr pointer fields target memory the
   program legitimately owns (its stack or map values) before copying; the
   pre-fix helper trusts the raw union.  This models the CVE-2022-2785 fix's
   bpfptr hardening. *)
let ptr_allowed (ctx : Hctx.t) addr =
  match Kmem.find_region ctx.kernel.mem addr with
  | Some r ->
    r.Kmem.alive
    && (String.equal r.Kmem.kind "stack" || String.equal r.Kmem.kind "map_value")
  | None -> false

let cmd_map_create = 0
let cmd_map_lookup = 1
let cmd_map_update = 2
let cmd_prog_load = 5

(* bpf_sys_bpf(cmd, attr_ptr, attr_size) *)
let sys_bpf (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 500L;
  let cmd = Int64.to_int args.(0) in
  let attr = args.(1) in
  let attr_size = Int64.to_int args.(2) in
  let mem = ctx.kernel.mem in
  let u32 off = Kmem.load mem ~size:4 ~addr:(Int64.add attr (Int64.of_int off)) ~context:"bpf_sys_bpf" in
  let u64 off = Kmem.load mem ~size:8 ~addr:(Int64.add attr (Int64.of_int off)) ~context:"bpf_sys_bpf" in
  if cmd = cmd_map_create then begin
    if attr_size < 16 then Errno.einval
    else begin
      let key_size = Int64.to_int (u32 4) in
      let value_size = Int64.to_int (u32 8) in
      let max_entries = Int64.to_int (u32 12) in
      if key_size <= 0 || key_size > 64 || value_size <= 0 || value_size > 4096
         || max_entries <= 0 || max_entries > 65536
      then Errno.einval
      else begin
        let def =
          { Bpf_map.name = "sys_bpf_map"; kind = Bpf_map.Array; key_size;
            value_size; max_entries; lock_off = None }
        in
        let map = Bpf_map.Registry.register ctx.maps ctx.kernel def in
        Int64.of_int map.Bpf_map.id
      end
    end
  end
  else if cmd = cmd_map_lookup then begin
    if attr_size < 24 then Errno.einval
    else begin
      let map_fd = Int64.to_int (u32 0) in
      let key_ptr = u64 8 in
      let value_ptr = u64 16 in
      match Bpf_map.Registry.find ctx.maps map_fd with
      | None -> Errno.einval
      | Some map ->
        let fixed = not (Bugdb.active ctx.bugs "hbug:cve-2022-2785-sys-bpf") in
        if fixed && not (ptr_allowed ctx key_ptr && ptr_allowed ctx value_ptr) then
          (* post-fix: pointer fields are validated before use *)
          Errno.einval
        else begin
          (* pre-fix: the union fields are trusted.  A NULL key_ptr is
             dereferenced right here, in kernel context (kernel crash); a
             crafted key_ptr is read from wherever it points (arbitrary
             kernel read). *)
          let key = Kmem.load_bytes mem ~addr:key_ptr ~len:map.def.key_size ~context:"bpf_sys_bpf(map_lookup)" in
          match Bpf_map.lookup map ~key with
          | None -> Errno.enoent
          | Some value_addr ->
            let value = Kmem.load_bytes mem ~addr:value_addr ~len:map.def.value_size ~context:"bpf_sys_bpf(map_lookup)" in
            Kmem.store_bytes mem ~addr:value_ptr ~src:value ~context:"bpf_sys_bpf(map_lookup)";
            0L
        end
    end
  end
  else if cmd = cmd_map_update then begin
    if attr_size < 24 then Errno.einval
    else begin
      let map_fd = Int64.to_int (u32 0) in
      let key_ptr = u64 8 in
      let value_ptr = u64 16 in
      match Bpf_map.Registry.find ctx.maps map_fd with
      | None -> Errno.einval
      | Some map ->
        let fixed = not (Bugdb.active ctx.bugs "hbug:cve-2022-2785-sys-bpf") in
        if fixed && not (ptr_allowed ctx key_ptr && ptr_allowed ctx value_ptr) then
          Errno.einval
        else begin
          let key = Kmem.load_bytes mem ~addr:key_ptr ~len:map.def.key_size ~context:"bpf_sys_bpf(map_update)" in
          let value = Kmem.load_bytes mem ~addr:value_ptr ~len:map.def.value_size ~context:"bpf_sys_bpf(map_update)" in
          match Bpf_map.update map mem ~key ~value with
          | Ok () -> 0L
          | Error e -> Errno.of_map_error e
        end
    end
  end
  else if cmd = cmd_prog_load then Errno.eperm
  else Errno.einval

(* bpf_override_return(ctx, rc): kprobe-only side effect, recorded. *)
let override_return (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 30L;
  Hctx.Kernel.bump ctx.kernel (Printf.sprintf "override_return:%Ld" args.(1));
  0L
