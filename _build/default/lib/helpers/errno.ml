(* Negative errno return values, as helpers report failures to programs. *)

let einval = -22L
let enoent = -2L
let e2big = -7L
let efault = -14L
let enomem = -12L
let eperm = -1L
let enotsupp = -524L
let ebusy = -16L

let of_map_error : Maps.Bpf_map.error -> int64 = function
  | Maps.Bpf_map.E2BIG -> e2big
  | ENOENT -> enoent
  | EINVAL -> einval
  | ENOTSUPP -> enotsupp
  | ENOMEM -> enomem
