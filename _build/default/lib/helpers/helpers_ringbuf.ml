(* Ring-buffer helpers.  Reservations are acquired resources: the trusted
   wrapper records a discard destructor so forced termination cannot leak
   the reservation (§3.1's cleanup-without-unwinding).

   "hbug:ringbuf-double-submit" models the Table 1 use-after-free class: a
   second submit of an already-completed record frees it twice. *)

module Kmem = Kernel_sim.Kmem
module Oops = Kernel_sim.Oops
module Bpf_map = Maps.Bpf_map
module Ringbuf = Maps.Ringbuf

let get_ringbuf (ctx : Hctx.t) handle =
  match Bpf_map.Registry.find ctx.maps (Int64.to_int handle) with
  | None -> None
  | Some map -> Bpf_map.ringbuf map

(* bpf_ringbuf_reserve(map, size, flags) -> addr or 0 *)
let ringbuf_reserve (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 100L;
  match get_ringbuf ctx args.(0) with
  | None -> 0L
  | Some rb -> (
    match Ringbuf.reserve rb ~size:(Int64.to_int args.(1)) with
    | None -> 0L
    | Some addr ->
      let _rid =
        Resources.acquire ctx.resources ~key:addr ~desc:"ringbuf reservation"
          ~destroy:(fun () -> ignore (Ringbuf.discard rb addr))
      in
      addr)

let complete ~submit (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 60L;
  let addr = args.(0) in
  let rbs = Bpf_map.Registry.all ctx.maps |> List.filter_map Bpf_map.ringbuf in
  let rec try_all = function
    | [] -> Errno.einval
    | rb :: rest -> (
      let f = if submit then Ringbuf.submit else Ringbuf.discard in
      match f rb addr with
      | Ok () ->
        ignore (Resources.forget_by_key ctx.resources addr);
        0L
      | Error Ringbuf.Already_completed ->
        if Bugdb.active ctx.bugs "hbug:ringbuf-double-submit" then
          (* the bug: the helper frees the record again *)
          Oops.raise_oops ~kind:Oops.Use_after_free ~addr
            ~context:"bpf_ringbuf_submit (double)"
            ~time_ns:(Kernel_sim.Vclock.now ctx.kernel.clock) ()
        else Errno.einval
      | Error Ringbuf.Not_reserved -> try_all rest)
  in
  try_all rbs

let ringbuf_submit ctx args = complete ~submit:true ctx args
let ringbuf_discard ctx args = complete ~submit:false ctx args

(* bpf_ringbuf_output(map, data, size, flags): reserve+copy+submit *)
let ringbuf_output (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 150L;
  match get_ringbuf ctx args.(0) with
  | None -> Errno.einval
  | Some rb -> (
    let size = Int64.to_int args.(2) in
    match Ringbuf.reserve rb ~size with
    | None -> Errno.enomem
    | Some addr ->
      let data =
        Kmem.load_bytes ctx.kernel.mem ~addr:args.(1) ~len:size
          ~context:"bpf_ringbuf_output"
      in
      Kmem.store_bytes ctx.kernel.mem ~addr ~src:data ~context:"bpf_ringbuf_output";
      (match Ringbuf.submit rb addr with Ok () -> 0L | Error _ -> Errno.einval))
