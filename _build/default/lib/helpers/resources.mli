(** The runtime resource table: §3.1's alternative to stack unwinding.

    Trusted helper wrappers record every acquired kernel resource together
    with a destructor closure; on termination for any reason (watchdog,
    fuel, panic) {!cleanup} runs the remaining destructors in LIFO order.
    Only trusted kernel-crate code installs destructors, so — unlike ABI
    unwinding — the cleanup path cannot run user code, cannot allocate,
    and cannot fail. *)

type resource = {
  rid : int;
  key : int64;          (** the runtime value identifying the resource *)
  desc : string;
  destroy : unit -> unit;
}

type t = {
  mutable items : resource list;       (** newest first: LIFO cleanup order *)
  mutable next_rid : int;
  mutable acquired_total : int;
  mutable released_by_program : int;
  mutable destroyed_by_cleanup : int;
}

val create : unit -> t

val acquire : t -> key:int64 -> desc:string -> destroy:(unit -> unit) -> int
(** Record an acquired resource; returns its id. *)

val find_by_key : t -> int64 -> resource option

val release_by_key : t -> int64 -> bool
(** The program released the resource itself (e.g. bpf_sk_release): run the
    destructor and drop the record.  False if the key is unknown. *)

val forget_by_key : t -> int64 -> bool
(** Drop the record without running the destructor (the resource was
    consumed by other means, e.g. a submitted ringbuf record). *)

val outstanding : t -> int

val cleanup : t -> int
(** Safe termination: run every remaining destructor, LIFO; returns how
    many ran. *)

val pp : Format.formatter -> t -> unit
