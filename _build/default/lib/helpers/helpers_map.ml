(* Map helpers: bpf_map_lookup_elem / update / delete / for_each.

   bpf_map_lookup_elem carries the Table 1 "integer overflow" bug model
   (fix 87ac0d60: 32-bit overflow when computing ARRAY map element offsets).
   The real bug truncated (index * value_size) to 32 bits; a 4 GiB map does
   not fit a simulation, so the model truncates to 16 bits — same defect
   class (offset wraps, lookup aliases the wrong element), demonstrable on a
   map a few hundred KiB large.  See DESIGN.md "Fidelity notes". *)

module Kmem = Kernel_sim.Kmem
module Bpf_map = Maps.Bpf_map

let overflow_wrap_bits = 16

let get_map (ctx : Hctx.t) handle = Bpf_map.Registry.find ctx.maps (Int64.to_int handle)

let read_key (ctx : Hctx.t) (map : Bpf_map.t) key_ptr =
  Kmem.load_bytes ctx.kernel.mem ~addr:key_ptr ~len:map.def.key_size
    ~context:"bpf_map helper"

let key_index key =
  let rec go acc i =
    if i < 0 then acc else go ((acc lsl 8) lor Char.code (Bytes.get key i)) (i - 1)
  in
  go 0 (min 3 (Bytes.length key - 1))

let lookup_elem (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 50L;
  match get_map ctx args.(0) with
  | None -> 0L
  | Some map -> (
    let key = read_key ctx map args.(1) in
    let buggy_overflow =
      Bugdb.active ctx.bugs "hbug:array-map-32bit-overflow"
      && map.def.kind = Bpf_map.Array
    in
    if buggy_overflow then begin
      (* the buggy offset computation: (index * value_size) truncated *)
      let idx = key_index key in
      if idx < 0 || idx >= map.def.max_entries then 0L
      else
        let wrapped =
          idx * map.def.value_size land ((1 lsl overflow_wrap_bits) - 1)
        in
        match map.storage with
        | Bpf_map.Array_storage region -> Kmem.region_addr region wrapped
        | _ -> 0L
    end
    else
      match Bpf_map.lookup map ~key with
      | Some addr -> addr
      | None -> 0L)

let update_elem (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 80L;
  match get_map ctx args.(0) with
  | None -> Errno.einval
  | Some map -> (
    let key = read_key ctx map args.(1) in
    let value =
      Kmem.load_bytes ctx.kernel.mem ~addr:args.(2) ~len:map.def.value_size
        ~context:"bpf_map_update_elem"
    in
    match Bpf_map.update map ctx.kernel.mem ~key ~value with
    | Ok () -> 0L
    | Error e -> Errno.of_map_error e)

let delete_elem (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 60L;
  match get_map ctx args.(0) with
  | None -> Errno.einval
  | Some map -> (
    let key = read_key ctx map args.(1) in
    match Bpf_map.delete map ~key with
    | Ok () -> 0L
    | Error e -> Errno.of_map_error e)

(* bpf_for_each_map_elem(map, callback_pc, callback_ctx, flags):
   invokes callback(index, value_addr, callback_ctx) per element; a nonzero
   callback return stops the iteration.  One of the expressiveness shims
   (§3.2: "iteration callback shim") a real language retires. *)
let for_each_map_elem (ctx : Hctx.t) (args : int64 array) =
  match get_map ctx args.(0) with
  | None -> Errno.einval
  | Some map -> (
    match ctx.call_subprog with
    | None -> Errno.enotsupp
    | Some call ->
      let cb_pc = Int64.to_int args.(1) in
      let cb_ctx = args.(2) in
      let n = map.def.max_entries in
      let rec go i count =
        if i >= n then count
        else begin
          Hctx.charge ctx 30L;
          let key = Bytes.create map.def.key_size in
          Bytes.set_int32_le key 0 (Int32.of_int i);
          match Bpf_map.lookup map ~key with
          | None -> go (i + 1) count
          | Some value_addr ->
            let ret = call cb_pc [| Int64.of_int i; value_addr; cb_ctx; 0L; 0L |] in
            if Int64.equal ret 0L then go (i + 1) (count + 1) else count + 1
        end
      in
      Int64.of_int (go 0 0))

(* queue/stack map helpers: three more of the §3.2 expressiveness shims
   ("queue/stack push/pop/peek") a real language retires. *)

(* bpf_map_push_elem(map, value, flags) *)
let push_elem (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 60L;
  match get_map ctx args.(0) with
  | None -> Errno.einval
  | Some map -> (
    let value =
      Kmem.load_bytes ctx.kernel.mem ~addr:args.(1) ~len:map.def.value_size
        ~context:"bpf_map_push_elem"
    in
    match Bpf_map.push map ctx.kernel.mem ~value with
    | Ok () -> 0L
    | Error e -> Errno.of_map_error e)

let pop_or_peek_elem ~remove (ctx : Hctx.t) (args : int64 array) =
  Hctx.charge ctx 60L;
  match get_map ctx args.(0) with
  | None -> Errno.einval
  | Some map -> (
    let op = if remove then Bpf_map.pop else Bpf_map.peek in
    match op map ctx.kernel.mem with
    | Ok value ->
      Kmem.store_bytes ctx.kernel.mem ~addr:args.(1) ~src:value
        ~context:"bpf_map_pop_elem";
      0L
    | Error e -> Errno.of_map_error e)

let pop_elem ctx args = pop_or_peek_elem ~remove:true ctx args
let peek_elem ctx args = pop_or_peek_elem ~remove:false ctx args
