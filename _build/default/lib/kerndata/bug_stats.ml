(* Table 1: security-related bugs found in eBPF helper functions and the
   verifier during 2021-2022, from the paper's manual audit of kernel commit
   logs.  These numbers are given exactly in the paper and encoded exactly.

   Each class also names the concrete injectable bug(s) in this repository
   that make the class *executable* (see Verifier.Vbug and Helpers.Bugdb):
   the reproduction does not just reprint the table, it demonstrates an
   instance of every class. *)

type clazz = {
  name : string;
  total : int;
  in_helpers : int;
  in_verifier : int;
  (* ids of the executable bug models in this repo demonstrating the class *)
  demos : string list;
}

let classes =
  [
    { name = "Arbitrary read/write"; total = 3; in_helpers = 1; in_verifier = 2;
      demos = [ "vbug:cve-2022-23222-ptr-arith"; "hbug:cve-2022-2785-sys-bpf" ] };
    { name = "Deadlock/Hang"; total = 2; in_helpers = 1; in_verifier = 1;
      demos = [ "hbug:nested-bpf-loop-hang"; "vbug:spin-lock-path-miss" ] };
    { name = "Integer overflow/underflow"; total = 2; in_helpers = 2; in_verifier = 0;
      demos = [ "hbug:array-map-32bit-overflow" ] };
    { name = "Kernel pointer leak"; total = 5; in_helpers = 0; in_verifier = 5;
      demos = [ "vbug:atomic-ptr-leak" ] };
    { name = "Memory leak"; total = 2; in_helpers = 0; in_verifier = 2;
      demos = [ "vbug:ringbuf-reserve-untracked" ] };
    { name = "Null-pointer dereference"; total = 7; in_helpers = 6; in_verifier = 1;
      demos = [ "hbug:task-storage-null-owner"; "hbug:cve-2022-2785-sys-bpf" ] };
    { name = "Out-of-bound access"; total = 7; in_helpers = 1; in_verifier = 6;
      demos = [ "vbug:bounds-propagation-32bit"; "hbug:probe-read-size-unchecked" ] };
    { name = "Reference count leak"; total = 1; in_helpers = 1; in_verifier = 0;
      demos = [ "hbug:sk-lookup-request-sock-leak"; "hbug:get-task-stack-no-ref" ] };
    { name = "Use-after-free"; total = 2; in_helpers = 1; in_verifier = 1;
      demos = [ "hbug:ringbuf-double-submit"; "vbug:loop-inline-uaf" ] };
    { name = "Misc"; total = 9; in_helpers = 5; in_verifier = 4; demos = [] };
  ]

let total = List.fold_left (fun a c -> a + c.total) 0 classes
let total_helpers = List.fold_left (fun a c -> a + c.in_helpers) 0 classes
let total_verifier = List.fold_left (fun a c -> a + c.in_verifier) 0 classes

(* The paper's bottom row: 40 bugs = 18 helper + 22 verifier. *)
let paper_totals = (40, 18, 22)
