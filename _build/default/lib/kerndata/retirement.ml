(* §3.2: the classification of helper functions under a safe-language
   extension framework.

   - Retire: helpers that exist only to compensate for eBPF's lack of
     expressiveness; a real language makes them unnecessary.  The paper
     (citing the MOAT preliminary study) counts 16 such helpers.
   - Simplify: helpers that must keep a kernel-side core but whose
     error-prone C logic (refcounting, integer arithmetic) moves into safe
     code via RAII / checked arithmetic.
   - Wrap: helpers whose unsafe core stays but gains a safe interface that
     makes the dangerous inputs unrepresentable (e.g. a reference type in
     place of a maybe-NULL pointer).

   Each entry maps to the executable counterpart in this repo so that the
   claim is demonstrated, not just tabulated. *)

type disposition = Retire | Simplify | Wrap

let disposition_to_string = function
  | Retire -> "retire"
  | Simplify -> "simplify"
  | Wrap -> "wrap"

type entry = {
  helper : string;
  disposition : disposition;
  rationale : string;
  rustlite_counterpart : string; (* what replaces it in the safe framework *)
}

(* The 16 retirable helpers (expressiveness compensation).  The paper names
   bpf_loop, bpf_strtol and bpf_strncmp as the representative examples; the
   rest of the 16 are the same genre per the preliminary study it cites. *)
let retire_list =
  [
    ("bpf_loop", "merely provides a loop mechanism", "native `while`/`for` loops");
    ("bpf_strtol", "string-to-long parsing", "built-in str::parse");
    ("bpf_strtoul", "string-to-ulong parsing", "built-in str::parse");
    ("bpf_strncmp", "string comparison", "pure safe-language implementation");
    ("bpf_snprintf", "string formatting", "safe formatting in the language");
    ("bpf_snprintf_btf", "object formatting", "safe formatting in the language");
    ("bpf_seq_printf", "formatted sequence output", "safe formatting in the language");
    ("bpf_seq_write", "raw sequence output", "safe buffer writes");
    ("bpf_copy_from_buffer", "bounded buffer copy", "safe slice copy");
    ("bpf_map_peek_elem", "queue/stack peek shim", "direct data-structure methods");
    ("bpf_map_pop_elem", "queue/stack pop shim", "direct data-structure methods");
    ("bpf_map_push_elem", "queue/stack push shim", "direct data-structure methods");
    ("bpf_for_each_map_elem", "iteration callback shim", "native iteration");
    ("bpf_find_vma_callback", "iteration callback shim", "native iteration");
    ("bpf_memcmp", "byte comparison", "safe slice comparison");
    ("bpf_memset", "byte fill", "safe slice fill");
  ]

let simplify_list =
  [
    ("bpf_get_task_stack",
     "leaked a task refcount (fixed 06ab134c); ownership makes the reference \
      a scoped RAII object",
     "Kcrate task handle: refcount held by the object, dropped on scope exit");
    ("bpf_sk_lookup_tcp",
     "leaked request_sock references (fixed 3046a827); same RAII treatment",
     "Kcrate sock handle with Drop releasing the reference");
    ("bpf_map_lookup_elem (ARRAY)",
     "32-bit index*size overflow (fixed 87ac0d60); checked arithmetic moves \
      the computation into safe code",
     "checked multiply in the safe wrapper before touching kernel memory");
  ]

let wrap_list =
  [
    ("bpf_task_storage_get",
     "NULL task_struct pointer dereference (fixed 1a9c72ad); a reference \
      type makes NULL unrepresentable",
     "wrapper takes &Task, which must be borrowed from a live object");
    ("bpf_sys_bpf",
     "NULL pointer inside a union argument crashed the kernel (CVE-2022-2785); \
      a typed struct argument replaces the raw union",
     "wrapper takes a typed command struct; no raw pointers cross the boundary");
  ]

let entries =
  List.map
    (fun (helper, rationale, counterpart) ->
      { helper; disposition = Retire; rationale; rustlite_counterpart = counterpart })
    retire_list
  @ List.map
      (fun (helper, rationale, counterpart) ->
        { helper; disposition = Simplify; rationale; rustlite_counterpart = counterpart })
      simplify_list
  @ List.map
      (fun (helper, rationale, counterpart) ->
        { helper; disposition = Wrap; rationale; rustlite_counterpart = counterpart })
      wrap_list

let retire_count = List.length retire_list (* = 16, the paper's number *)

let count disposition =
  List.length (List.filter (fun e -> e.disposition = disposition) entries)
