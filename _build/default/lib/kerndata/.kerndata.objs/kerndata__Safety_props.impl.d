lib/kerndata/safety_props.ml:
