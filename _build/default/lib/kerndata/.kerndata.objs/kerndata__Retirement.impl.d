lib/kerndata/retirement.ml: List
