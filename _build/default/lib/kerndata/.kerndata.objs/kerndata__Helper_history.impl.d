lib/kerndata/helper_history.ml: Kver List Option
