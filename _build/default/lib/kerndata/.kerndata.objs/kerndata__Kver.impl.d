lib/kerndata/kver.ml: Int List String
