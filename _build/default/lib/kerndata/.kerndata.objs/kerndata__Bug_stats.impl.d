lib/kerndata/bug_stats.ml: List
