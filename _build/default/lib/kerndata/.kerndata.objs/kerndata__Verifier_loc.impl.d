lib/kerndata/verifier_loc.ml: Kver List Option
