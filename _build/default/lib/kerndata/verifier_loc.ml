(* Figure 2: lines of code of the eBPF verifier (kernel/bpf/verifier.c) by
   kernel version over time.

   The paper gives the series as a chart, not a table; values here are
   transcribed from the figure (~2k LoC at v3.18 in 2014 rising to ~12k at
   v6.1 in 2022).  Each point also records the marquee verifier features the
   paper's §2.1 narrative attaches to the growth, so the reproduction can
   report *why* each step happened. *)

type point = {
  version : Kver.t;
  loc : int;
  features_added : string list;
}

let series =
  [
    { version = Kver.V3_18; loc = 2024;
      features_added = [ "initial eBPF verifier (branch walk, reg types)" ] };
    { version = Kver.V4_3; loc = 2680;
      features_added = [ "persistent maps"; "tail calls" ] };
    { version = Kver.V4_9; loc = 3404;
      features_added = [ "direct packet access checks" ] };
    { version = Kver.V4_14; loc = 4862;
      features_added = [ "value range tracking (min/max bounds)" ] };
    { version = Kver.V4_20; loc = 6772;
      features_added = [ "BPF-to-BPF calls (+500 LoC)"; "state pruning rework" ] };
    { version = Kver.V5_4; loc = 8700;
      features_added = [ "bpf_spin_lock tracking"; "bounded loops"; "reference tracking" ] };
    { version = Kver.V5_10; loc = 10542;
      features_added = [ "sleepable programs"; "more pointer kinds (BTF)" ] };
    { version = Kver.V5_15; loc = 11374;
      features_added = [ "bpf_loop callback verification"; "timer helpers" ] };
    { version = Kver.V6_1; loc = 12316;
      features_added = [ "kptr support"; "dynptr checks"; "loop inlining" ] };
  ]

let loc_of version =
  List.find_opt (fun p -> p.version = version) series |> Option.map (fun p -> p.loc)

let first_loc = (List.hd series).loc
let last_loc = (List.nth series (List.length series - 1)).loc

(* Growth factor over the measured window; the paper's point is monotone,
   unabating growth (~6x over 8 years). *)
let growth_factor = float_of_int last_loc /. float_of_int first_loc

let monotone =
  let rec go = function
    | a :: (b :: _ as rest) -> a.loc <= b.loc && go rest
    | _ -> true
  in
  go series
