(* Table 2: the safety properties the verifier enforces today and the
   mechanism that enforces each one in the proposed framework.  The
   executable counterpart lives in Framework.Safety_matrix, which runs a
   witness-violation program per row and reports which mechanism caught it. *)

type mechanism = Language_safety | Runtime_protection

let mechanism_to_string = function
  | Language_safety -> "Language safety"
  | Runtime_protection -> "Runtime protection"

type property = {
  prop : string;
  enforced_by : mechanism;
  witness : string; (* id of the executable witness in Framework.Safety_matrix *)
}

let table =
  [
    { prop = "No arbitrary memory access"; enforced_by = Language_safety;
      witness = "oob-array-index" };
    { prop = "No arbitrary control-flow transfer"; enforced_by = Language_safety;
      witness = "no-computed-goto" };
    { prop = "Type safety"; enforced_by = Language_safety;
      witness = "ill-typed-rejected" };
    { prop = "Safe resource management"; enforced_by = Runtime_protection;
      witness = "raii-cleanup-on-termination" };
    { prop = "Termination"; enforced_by = Runtime_protection;
      witness = "watchdog-fires-on-infinite-loop" };
    { prop = "Stack protection"; enforced_by = Runtime_protection;
      witness = "stack-guard-on-deep-recursion" };
  ]
