(* The kernel versions the paper's Figures 2 and 4 are plotted over, plus
   v5.18 (the version whose helper census and call graphs Figure 3 uses). *)

type t = V3_18 | V4_3 | V4_9 | V4_14 | V4_20 | V5_4 | V5_10 | V5_15 | V5_18 | V6_1

let all = [ V3_18; V4_3; V4_9; V4_14; V4_20; V5_4; V5_10; V5_15; V5_18; V6_1 ]

(* Figure-axis versions (v5.18 is not a point on Fig. 2/4). *)
let figure_axis = [ V3_18; V4_3; V4_9; V4_14; V4_20; V5_4; V5_10; V5_15; V6_1 ]

let to_string = function
  | V3_18 -> "v3.18" | V4_3 -> "v4.3" | V4_9 -> "v4.9" | V4_14 -> "v4.14"
  | V4_20 -> "v4.20" | V5_4 -> "v5.4" | V5_10 -> "v5.10" | V5_15 -> "v5.15"
  | V5_18 -> "v5.18" | V6_1 -> "v6.1"

(* Release year, as used for the x axis of Figs. 2 and 4. *)
let year = function
  | V3_18 -> 2014 | V4_3 -> 2015 | V4_9 -> 2016 | V4_14 -> 2017 | V4_20 -> 2018
  | V5_4 -> 2019 | V5_10 -> 2020 | V5_15 -> 2021 | V5_18 -> 2022 | V6_1 -> 2022

let rank = function
  | V3_18 -> 0 | V4_3 -> 1 | V4_9 -> 2 | V4_14 -> 3 | V4_20 -> 4 | V5_4 -> 5
  | V5_10 -> 6 | V5_15 -> 7 | V5_18 -> 8 | V6_1 -> 9

let compare a b = Int.compare (rank a) (rank b)
let ( <= ) a b = compare a b <= 0
let ( >= ) a b = compare a b >= 0

let of_string s =
  List.find_opt (fun v -> String.equal (to_string v) s) all
