(* Figure 4: the number of eBPF helper functions by kernel version and year.

   Values transcribed from the figure, anchored by the facts the text states
   exactly: the growth is "roughly 50 helper functions every two years", and
   the Figure 3 census found 249 helpers in Linux 5.18 (counting every
   program-type-specific variant reachable from the helper table; the Fig. 4
   curve counts unique helper definitions, which is why v6.1 sits near 200
   on the figure axis while the census is larger). *)

type point = { version : Kver.t; count : int }

let series =
  [
    { version = Kver.V3_18; count = 14 };
    { version = Kver.V4_3; count = 27 };
    { version = Kver.V4_9; count = 46 };
    { version = Kver.V4_14; count = 66 };
    { version = Kver.V4_20; count = 91 };
    { version = Kver.V5_4; count = 121 };
    { version = Kver.V5_10; count = 153 };
    { version = Kver.V5_15; count = 180 };
    { version = Kver.V6_1; count = 211 };
  ]

(* The §2.2/Fig. 3 census of Linux 5.18, counting per-program-type entries. *)
let census_5_18 = 249

let count_of version =
  List.find_opt (fun p -> p.version = version) series |> Option.map (fun p -> p.count)

(* Least-squares slope in helpers/year over the series; the paper claims
   roughly 50 per two years, i.e. ~25/year. *)
let slope_per_year =
  let points =
    List.map (fun p -> (float_of_int (Kver.year p.version), float_of_int p.count)) series
  in
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

let per_two_years = 2. *. slope_per_year
