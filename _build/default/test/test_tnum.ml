(* Unit and property tests for the tristate-number domain.  The soundness
   property (every abstract operation's result contains every concrete
   result) is the whole point of the domain; qcheck drives it per operator. *)

open Untenable

let t64 = Alcotest.testable (fun ppf v -> Format.fprintf ppf "%Lx" v) Int64.equal
let tn = Alcotest.testable Tnum.pp Tnum.equal

let check_bool = Alcotest.(check bool)

let test_const () =
  let t = Tnum.const 42L in
  check_bool "const is const" true (Tnum.is_const t);
  Alcotest.check t64 "const value" 42L (Option.get (Tnum.to_const t));
  check_bool "contains own value" true (Tnum.contains t 42L);
  check_bool "not contains other" false (Tnum.contains t 43L)

let test_unknown () =
  check_bool "unknown is unknown" true (Tnum.is_unknown Tnum.unknown);
  check_bool "unknown contains anything" true (Tnum.contains Tnum.unknown 0xdeadbeefL);
  check_bool "unknown not const" false (Tnum.is_const Tnum.unknown)

let test_range () =
  let t = Tnum.range ~min:16L ~max:31L in
  check_bool "contains min" true (Tnum.contains t 16L);
  check_bool "contains max" true (Tnum.contains t 31L);
  check_bool "contains middle" true (Tnum.contains t 20L);
  (* tnum ranges over-approximate to a power-of-two window *)
  Alcotest.check t64 "umin" 16L (Tnum.umin t);
  Alcotest.check t64 "umax" 31L (Tnum.umax t)

let test_range_cross_pow2 () =
  (* a range crossing a power of two loses precision but stays sound *)
  let t = Tnum.range ~min:30L ~max:33L in
  List.iter (fun v -> check_bool "sound" true (Tnum.contains t v)) [ 30L; 31L; 32L; 33L ]

let test_add_consts () =
  Alcotest.check tn "2+3=5" (Tnum.const 5L) (Tnum.add (Tnum.const 2L) (Tnum.const 3L))

let test_sub_consts () =
  Alcotest.check tn "5-3=2" (Tnum.const 2L) (Tnum.sub (Tnum.const 5L) (Tnum.const 3L))

let test_mul_consts () =
  Alcotest.check tn "6*7=42" (Tnum.const 42L) (Tnum.mul (Tnum.const 6L) (Tnum.const 7L))

let test_neg_const () =
  Alcotest.check tn "-(5)" (Tnum.const (-5L)) (Tnum.neg (Tnum.const 5L))

let test_bitwise_consts () =
  Alcotest.check tn "and" (Tnum.const 0b1000L)
    (Tnum.logand (Tnum.const 0b1100L) (Tnum.const 0b1010L));
  Alcotest.check tn "or" (Tnum.const 0b1110L)
    (Tnum.logor (Tnum.const 0b1100L) (Tnum.const 0b1010L));
  Alcotest.check tn "xor" (Tnum.const 0b0110L)
    (Tnum.logxor (Tnum.const 0b1100L) (Tnum.const 0b1010L))

let test_shifts () =
  Alcotest.check tn "lshift" (Tnum.const 40L) (Tnum.lshift (Tnum.const 5L) 3);
  Alcotest.check tn "rshift" (Tnum.const 5L) (Tnum.rshift (Tnum.const 40L) 3);
  Alcotest.check tn "arshift keeps sign" (Tnum.const (-2L))
    (Tnum.arshift (Tnum.const (-8L)) 2 ~bits:64)

let test_cast () =
  let t = Tnum.cast (Tnum.const 0x1234_5678_9abcL) ~size:2 in
  Alcotest.check tn "cast to 2 bytes" (Tnum.const 0x9abcL) t

let test_subreg () =
  let t = Tnum.const 0xaaaa_bbbb_cccc_ddddL in
  Alcotest.check tn "subreg" (Tnum.const 0xcccc_ddddL) (Tnum.subreg t);
  Alcotest.check tn "clear_subreg" (Tnum.const 0xaaaa_bbbb_0000_0000L)
    (Tnum.clear_subreg t);
  Alcotest.check tn "const_subreg" (Tnum.const 0xaaaa_bbbb_0000_002aL)
    (Tnum.const_subreg t 42L)

let test_is_aligned () =
  check_bool "8-aligned const" true (Tnum.is_aligned (Tnum.const 64L) 8L);
  check_bool "not 8-aligned" false (Tnum.is_aligned (Tnum.const 63L) 8L);
  check_bool "unknown unaligned" false (Tnum.is_aligned Tnum.unknown 8L);
  (* a value known to have low bits zero is aligned even if the rest is
     unknown: the lshift trick *)
  check_bool "shifted unknown is aligned" true
    (Tnum.is_aligned (Tnum.lshift Tnum.unknown 3) 8L)

let test_subset () =
  let small = Tnum.const 5L in
  check_bool "const subset of unknown" true (Tnum.subset small Tnum.unknown);
  check_bool "unknown not subset of const" false (Tnum.subset Tnum.unknown small);
  check_bool "reflexive" true (Tnum.subset small small)

let test_intersect () =
  let a = Tnum.range ~min:0L ~max:255L in
  let b = Tnum.const 66L in
  let i = Tnum.intersect a b in
  check_bool "intersect keeps the common member" true (Tnum.contains i 66L)

let test_union () =
  let u = Tnum.union (Tnum.const 4L) (Tnum.const 6L) in
  check_bool "union contains both" true (Tnum.contains u 4L && Tnum.contains u 6L)

let test_umin_umax () =
  let t = Tnum.make ~value:0x10L ~mask:0x0fL in
  Alcotest.check t64 "umin is value" 0x10L (Tnum.umin t);
  Alcotest.check t64 "umax is value|mask" 0x1fL (Tnum.umax t)

let test_pp_bin () =
  let s = Format.asprintf "%a" Tnum.pp_bin (Tnum.make ~value:0b10L ~mask:0b100L) in
  Alcotest.(check int) "64 chars" 64 (String.length s);
  Alcotest.(check string) "tail" "x10" (String.sub s 61 3)

(* ------------------------- properties ------------------------- *)

(* Arbitrary tnum: a random mask and a random value confined to known bits,
   plus a concrete member of it. *)
let gen_tnum_with_member =
  QCheck.Gen.(
    let* value = ui64 in
    let* mask = ui64 in
    let value = Int64.logand value (Int64.lognot mask) in
    let* noise = ui64 in
    let member = Int64.logor value (Int64.logand noise mask) in
    return (Tnum.make ~value ~mask, member))

let arb_tnum_member =
  QCheck.make ~print:(fun (t, m) -> Printf.sprintf "%s ∋ %Lx" (Tnum.to_string t) m)
    gen_tnum_with_member

let binop_sound name abstract concrete =
  QCheck.Test.make ~count:500 ~name:(name ^ " soundness")
    (QCheck.pair arb_tnum_member arb_tnum_member)
    (fun ((ta, a), (tb, b)) -> Tnum.contains (abstract ta tb) (concrete a b))

let shift_sound name abstract concrete =
  QCheck.Test.make ~count:500 ~name:(name ^ " soundness")
    (QCheck.pair arb_tnum_member QCheck.(int_bound 63))
    (fun ((ta, a), n) -> Tnum.contains (abstract ta n) (concrete a n))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      binop_sound "add" Tnum.add Int64.add;
      binop_sound "sub" Tnum.sub Int64.sub;
      binop_sound "mul" Tnum.mul Int64.mul;
      binop_sound "and" Tnum.logand Int64.logand;
      binop_sound "or" Tnum.logor Int64.logor;
      binop_sound "xor" Tnum.logxor Int64.logxor;
      shift_sound "lshift" Tnum.lshift (fun a n -> Int64.shift_left a n);
      shift_sound "rshift" Tnum.rshift (fun a n -> Int64.shift_right_logical a n);
      shift_sound "arshift"
        (fun t n -> Tnum.arshift t n ~bits:64)
        (fun a n -> Int64.shift_right a n);
      QCheck.Test.make ~count:500 ~name:"cast soundness"
        (QCheck.pair arb_tnum_member (QCheck.oneofl [ 1; 2; 4; 8 ]))
        (fun ((t, a), size) ->
          let mask =
            if size >= 8 then -1L else Int64.sub (Int64.shift_left 1L (8 * size)) 1L
          in
          Tnum.contains (Tnum.cast t ~size) (Int64.logand a mask));
      QCheck.Test.make ~count:500 ~name:"range soundness"
        (QCheck.pair QCheck.int64 QCheck.int64)
        (fun (a, b) ->
          let lo = if Int64.unsigned_compare a b <= 0 then a else b in
          let hi = if Int64.unsigned_compare a b <= 0 then b else a in
          let t = Tnum.range ~min:lo ~max:hi in
          Tnum.contains t lo && Tnum.contains t hi);
      QCheck.Test.make ~count:500 ~name:"union soundness" (QCheck.pair arb_tnum_member arb_tnum_member)
        (fun ((ta, a), (tb, b)) ->
          let u = Tnum.union ta tb in
          Tnum.contains u a && Tnum.contains u b);
      QCheck.Test.make ~count:500 ~name:"subset agrees with membership"
        (QCheck.pair arb_tnum_member arb_tnum_member)
        (fun ((ta, a), (tb, _)) ->
          (* if ta ⊆ tb then every member of ta is a member of tb *)
          QCheck.assume (Tnum.subset ta tb);
          Tnum.contains tb a);
    ]

let suite =
  [
    Alcotest.test_case "const" `Quick test_const;
    Alcotest.test_case "unknown" `Quick test_unknown;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "range crossing pow2" `Quick test_range_cross_pow2;
    Alcotest.test_case "add consts" `Quick test_add_consts;
    Alcotest.test_case "sub consts" `Quick test_sub_consts;
    Alcotest.test_case "mul consts" `Quick test_mul_consts;
    Alcotest.test_case "neg const" `Quick test_neg_const;
    Alcotest.test_case "bitwise consts" `Quick test_bitwise_consts;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "cast" `Quick test_cast;
    Alcotest.test_case "subreg family" `Quick test_subreg;
    Alcotest.test_case "is_aligned" `Quick test_is_aligned;
    Alcotest.test_case "subset" `Quick test_subset;
    Alcotest.test_case "intersect" `Quick test_intersect;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "umin/umax" `Quick test_umin_umax;
    Alcotest.test_case "pp_bin" `Quick test_pp_bin;
  ]
  @ properties
