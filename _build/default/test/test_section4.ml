(* Tests for the §4 discussion-section features implemented as extensions:
   pool-backed dynamic allocation for rustlite and MPK-style protection
   domains in the simulated kernel. *)

open Untenable
module Kmem = Kernel_sim.Kmem
module Oops = Kernel_sim.Oops
module Kernel = Kernel_sim.Kernel
module Mempool = Kernel_sim.Mempool
module Eval = Rustlite.Eval
module Kcrate = Rustlite.Kcrate
module Value = Rustlite.Value
module Guard = Runtime.Guard
module World = Framework.World
open Rustlite.Ast

let run ?fuel e =
  let world = World.create_populated () in
  let kctx = { Kcrate.hctx = World.new_hctx world; map_ids = [] } in
  (world, Eval.run ?fuel ~kctx e)

(* ---------------- §4 dynamic allocation ---------------- *)

let test_pool_alloc_roundtrip () =
  let _, outcome =
    run
      (Match_option
         { scrutinee = Call ("pool_alloc", []); bind = "c";
           some_branch =
             Seq
               [ Call ("chunk_write", [ Borrow "c"; Lit_int 0L; Lit_int 1234L ]);
                 Call ("chunk_write", [ Borrow "c"; Lit_int 8L; Lit_int 1L ]);
                 Binop (Add,
                        Call ("chunk_read", [ Borrow "c"; Lit_int 0L ]),
                        Call ("chunk_read", [ Borrow "c"; Lit_int 8L ])) ];
           none_branch = Lit_int (-1L) })
  in
  match outcome with
  | Eval.Ret (Value.V_int 1235L) -> ()
  | o -> Alcotest.failf "expected 1235, got %s" (Format.asprintf "%a" Eval.pp_outcome o)

let test_pool_chunk_raii () =
  (* the chunk returns to the pool when its handle drops *)
  let world, outcome =
    run
      (Seq
         [ Match_option
             { scrutinee = Call ("pool_alloc", []); bind = "c";
               some_branch = Call ("chunk_write", [ Borrow "c"; Lit_int 0L; Lit_int 1L ]);
               none_branch = Lit_unit };
           Call ("pool_available", []) ])
  in
  (match outcome with
  | Eval.Ret (Value.V_int v) ->
    Alcotest.(check int64) "full pool again"
      (Int64.of_int Kernel.default_pool_chunks) v
  | o -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" Eval.pp_outcome o));
  Alcotest.(check int) "no leaked chunks" 0
    (List.length (Mempool.leaked world.World.kernel.Kernel.pool))

let test_pool_chunk_raii_on_panic () =
  let world, outcome =
    run
      (Match_option
         { scrutinee = Call ("pool_alloc", []); bind = "c";
           some_branch = Panic "die holding a chunk"; none_branch = Lit_unit })
  in
  (match outcome with
  | Eval.Terminated t -> Alcotest.(check int) "cleaned" 1 t.Guard.cleaned_resources
  | o -> Alcotest.failf "expected panic, got %s" (Format.asprintf "%a" Eval.pp_outcome o));
  Alcotest.(check int) "chunk back in pool" 0
    (List.length (Mempool.leaked world.World.kernel.Kernel.pool))

let test_pool_exhaustion_is_an_option () =
  (* exhausting the pool yields None, never a fault: allocate in a loop and
     count successes *)
  let _, outcome =
    run
      (Let
         { name = "got"; mut = true; value = Lit_int 0L;
           body =
             Seq
               [ For
                   ( "i", Lit_int 0L,
                     Lit_int (Int64.of_int (Kernel.default_pool_chunks + 8)),
                     Match_option
                       { scrutinee = Call ("pool_alloc", []); bind = "c";
                         some_branch =
                           Seq
                             [ (* keep it alive past this iteration? no: it
                                  drops at scope end, so every iteration
                                  succeeds.  Count attempts that succeeded. *)
                               Assign ("got", Binop (Add, Var "got", Lit_int 1L)) ];
                         none_branch = Lit_unit } );
                 Var "got" ] })
  in
  match outcome with
  | Eval.Ret (Value.V_int v) ->
    Alcotest.(check int64) "every alloc succeeded (RAII recycles)"
      (Int64.of_int (Kernel.default_pool_chunks + 8)) v
  | o -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" Eval.pp_outcome o)

let test_chunk_bounds_checked () =
  let _, outcome =
    run
      (Match_option
         { scrutinee = Call ("pool_alloc", []); bind = "c";
           some_branch = Call ("chunk_write", [ Borrow "c"; Lit_int 4096L; Lit_int 1L ]);
           none_branch = Lit_unit })
  in
  match outcome with
  | Eval.Terminated { Guard.reason = Guard.Language_panic _; _ } -> ()
  | o -> Alcotest.failf "expected bounds panic, got %s" (Format.asprintf "%a" Eval.pp_outcome o)

(* ---------------- §4 MPK protection domains ---------------- *)

let test_mpk_blocks_stray_write () =
  let kernel = Kernel.create () in
  let mem = kernel.Kernel.mem in
  let ext_region = Kmem.alloc mem ~size:64 ~kind:"map_value" ~name:"ext_data" () in
  Kmem.set_domain ext_region ~pkey:1;
  Kmem.enable_mpk mem;
  (* a stray write from "unsafe kernel code" (domain closed) faults *)
  (match
     Kmem.store mem ~size:8 ~addr:ext_region.Kmem.base ~value:0x41L
       ~context:"buggy subsystem"
   with
  | () -> Alcotest.fail "stray write should fault"
  | exception Oops.Kernel_oops r ->
    Alcotest.(check string) "pkey fault" "protection key violation (pkey fault)"
      (Oops.kind_to_string r.Oops.kind));
  (* the trusted gate opens the domain around legitimate access *)
  Kmem.with_pkey mem ~pkey:1 (fun () ->
      Kmem.store mem ~size:8 ~addr:ext_region.Kmem.base ~value:7L ~context:"kcrate gate");
  Alcotest.(check int64) "gated write landed" 7L
    (Kmem.with_pkey mem ~pkey:1 (fun () ->
         Kmem.load mem ~size:8 ~addr:ext_region.Kmem.base ~context:"kcrate gate"))

let test_mpk_disabled_is_permissive () =
  (* the ablation: with MPK off, the same stray write silently corrupts *)
  let kernel = Kernel.create () in
  let mem = kernel.Kernel.mem in
  let ext_region = Kmem.alloc mem ~size:64 ~kind:"map_value" ~name:"ext_data" () in
  Kmem.set_domain ext_region ~pkey:1;
  Kmem.store mem ~size:8 ~addr:ext_region.Kmem.base ~value:0x41L ~context:"buggy subsystem";
  Alcotest.(check int64) "silent corruption" 0x41L
    (Kmem.load mem ~size:8 ~addr:ext_region.Kmem.base ~context:"t")

let test_mpk_gate_restores_on_exception () =
  let kernel = Kernel.create () in
  let mem = kernel.Kernel.mem in
  let r = Kmem.alloc mem ~size:64 ~kind:"map_value" ~name:"d" () in
  Kmem.set_domain r ~pkey:2;
  Kmem.enable_mpk mem;
  (match Kmem.with_pkey mem ~pkey:2 (fun () -> failwith "boom") with
  | () -> Alcotest.fail "should raise"
  | exception Failure _ -> ());
  (* the grant must not leak past the gate *)
  match Kmem.load mem ~size:8 ~addr:r.Kmem.base ~context:"after" with
  | _ -> Alcotest.fail "domain left open after exception"
  | exception Oops.Kernel_oops _ -> ()

let test_mpk_pkey_zero_always_open () =
  let kernel = Kernel.create () in
  let mem = kernel.Kernel.mem in
  let r = Kmem.alloc mem ~size:8 ~kind:"test" ~name:"z" () in
  Kmem.enable_mpk mem;
  Kmem.store mem ~size:8 ~addr:r.Kmem.base ~value:1L ~context:"t";
  Alcotest.(check int64) "default domain unaffected" 1L
    (Kmem.load mem ~size:8 ~addr:r.Kmem.base ~context:"t")

let suite =
  [
    Alcotest.test_case "pool alloc roundtrip" `Quick test_pool_alloc_roundtrip;
    Alcotest.test_case "pool chunk RAII" `Quick test_pool_chunk_raii;
    Alcotest.test_case "pool chunk RAII on panic" `Quick test_pool_chunk_raii_on_panic;
    Alcotest.test_case "pool exhaustion is Option" `Quick test_pool_exhaustion_is_an_option;
    Alcotest.test_case "chunk bounds checked" `Quick test_chunk_bounds_checked;
    Alcotest.test_case "mpk blocks stray write" `Quick test_mpk_blocks_stray_write;
    Alcotest.test_case "mpk disabled is permissive" `Quick test_mpk_disabled_is_permissive;
    Alcotest.test_case "mpk gate restores on exception" `Quick test_mpk_gate_restores_on_exception;
    Alcotest.test_case "mpk pkey 0 open" `Quick test_mpk_pkey_zero_always_open;
  ]
