(* Tests for the PREVAIL-style abstract-interpretation verifier: same
   rejections as the in-kernel engine on straight-line unsafety, native
   bounded-loop handling via widening, the documented precision losses
   (path correlation), and the scalability win on join-heavy programs. *)

open Untenable
open Ebpf.Asm
module V = Bpf_verifier.Verifier
module P = Bpf_verifier.Prevail
module Program = Ebpf.Program
module Bpf_map = Maps.Bpf_map

let test_map_def : Bpf_map.def =
  { Bpf_map.name = "t"; kind = Bpf_map.Array; key_size = 4; value_size = 16;
    max_entries = 4; lock_off = None }

let map_def = function 1 -> Some test_map_def | _ -> None

let pverify ?config items =
  let prog = Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe items in
  P.verify ?config ~map_def prog

let dverify items =
  let prog = Program.of_items_exn ~name:"t" ~prog_type:Program.Kprobe items in
  V.verify ~map_def prog

let expect_ok items =
  match pverify items with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "prevail rejected: %s" (Format.asprintf "%a" V.pp_reject r)

let expect_reject ~substring items =
  match pverify items with
  | Ok _ -> Alcotest.failf "prevail accepted; expected rejection about %S" substring
  | Error r ->
    let msg = Format.asprintf "%a" V.pp_reject r in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if not (contains msg substring) then
      Alcotest.failf "rejection %S does not mention %S" msg substring

let h = Helpers.Registry.id_of_name

let test_minimal () = expect_ok [ mov_i r0 0; exit_ ]

let test_basic_rejections () =
  expect_reject ~substring:"!read_ok" [ mov_r r0 r3; exit_ ];
  expect_reject ~substring:"invalid read from stack" [ ldxdw r0 r10 (-8); exit_ ];
  expect_reject ~substring:"invalid mem access" [ mov_i r2 7; ldxdw r0 r2 0; exit_ ];
  expect_reject ~substring:"leaks addr" [ mov_r r0 r10; exit_ ]

let test_map_pattern () =
  expect_ok
    [ stdw r10 (-8) 0; map_fd r1 1; mov_r r2 r10; add_i r2 (-8);
      call (h "bpf_map_lookup_elem"); jeq_i r0 0 "out";
      ldxdw r3 r0 0 [@warning "-26"]; label "out"; mov_i r0 0; exit_ ];
  expect_reject ~substring:"invalid access"
    [ stdw r10 (-8) 0; map_fd r1 1; mov_r r2 r10; add_i r2 (-8);
      call (h "bpf_map_lookup_elem"); jeq_i r0 0 "out";
      ldxdw r3 r0 9 [@warning "-26"]; label "out"; mov_i r0 0; exit_ ]

let test_native_bounded_loop () =
  (* no bpf_loop needed: the back edge converges via join/widening *)
  expect_ok
    [ mov_i r0 0; mov_i r6 10; label "l"; add_i r0 1; sub_i r6 1; jne_i r6 0 "l";
      mov_i r0 0; exit_ ]

let test_loop_indexed_access_imprecise () =
  (* the widened counter loses its bounds, so indexing a map value by it is
     rejected — the documented precision cost of the approach *)
  expect_reject ~substring:"map_value"
    ([ stdw r10 (-8) 0; map_fd r1 1; mov_r r2 r10; add_i r2 (-8);
       call (h "bpf_map_lookup_elem"); jeq_i r0 0 "out"; mov_i r6 0;
       label "l"; mov_r r3 r0; add_r r3 r6; ldxb r4 r3 0 [@warning "-26"];
       add_i r6 1; jne_i r6 8 "l"; label "out"; mov_i r0 0; exit_ ])

let test_unsupported_helpers_gated () =
  expect_reject ~substring:"not supported"
    [ mov_i r1 8080; call (h "bpf_sk_lookup_tcp"); mov_i r0 0; exit_ ];
  expect_reject ~substring:"not supported"
    [ mov_i r1 4; mov_label r2 "cb"; mov_i r3 0; mov_i r4 0; call (h "bpf_loop");
      mov_i r0 0; exit_; label "cb"; mov_i r0 0; exit_ ];
  expect_reject ~substring:"not supported"
    [ mov_i r1 0; call_sub "sub"; exit_; label "sub"; mov_i r0 0; exit_ ]

let correlated_paths =
  (* r7 encodes which path bounded r6; the fallthrough of the second branch
     only happens when r6 <= 8.  Path-sensitive DFS proves it; the join
     erases the correlation. *)
  [ ldxdw r6 r1 0; stdw r10 (-8) 0; map_fd r1 1; mov_r r2 r10; add_i r2 (-8);
    call (h "bpf_map_lookup_elem"); jeq_i r0 0 "out";
    jgt_i r6 8 "big"; mov_i r7 0; ja "join"; label "big"; mov_i r7 1;
    label "join"; jeq_i r7 1 "out";
    add_r r0 r6; ldxb r3 r0 0 [@warning "-26"];
    label "out"; mov_i r0 0; exit_ ]

let test_precision_vs_dfs () =
  (match dverify correlated_paths with
  | Ok _ -> ()
  | Error r ->
    Alcotest.failf "path-sensitive DFS should accept: %s"
      (Format.asprintf "%a" V.pp_reject r));
  match pverify correlated_paths with
  | Error _ -> () (* the join erased the r6/r7 correlation: rejected *)
  | Ok _ -> Alcotest.fail "join-based AI should lose the correlation"

let test_scalability_vs_dfs () =
  (* the path-unique-bitmask family that defeats DFS pruning converges in
     linearly many AI iterations *)
  let unprunable n =
    List.concat
      [ [ mov_i r0 0; mov_i r7 0 ];
        List.concat_map
          (fun i ->
            [ ldxdw r6 r1 (8 * (i mod 8));
              jle_i r6 1000 (Printf.sprintf "t%d" i);
              or_i r7 (1 lsl i);
              label (Printf.sprintf "t%d" i) ])
          (List.init n (fun i -> i));
        [ mov_i r0 0; exit_ ] ]
  in
  let config = { (V.default_config ()) with V.insn_budget = 50_000 } in
  (* DFS blows its budget at n=16... *)
  (match
     V.verify ~config ~map_def
       (Program.of_items_exn ~name:"u" ~prog_type:Program.Kprobe (unprunable 16))
   with
  | Error r ->
    let msg = Format.asprintf "%a" V.pp_reject r in
    Alcotest.(check bool) ("budget hit: " ^ msg) true true
  | Ok _ -> Alcotest.fail "expected DFS to exceed its budget");
  (* ...while AI converges comfortably *)
  match pverify ~config (unprunable 16) with
  | Ok s ->
    Alcotest.(check bool)
      (Printf.sprintf "linear work (%d insns over %d iterations)" s.P.insns_processed
         s.P.fixpoint_iterations)
      true
      (s.P.insns_processed < 2_000)
  | Error r -> Alcotest.failf "AI rejected: %s" (Format.asprintf "%a" V.pp_reject r)

(* agreement property: on the loop-free helper-light fragment, anything the
   AI accepts the DFS accepts too (the AI is strictly more conservative
   there), and AI-accepted programs never oops at runtime *)
let conservativeness =
  QCheck.Test.make ~count:200
    ~name:"prevail-accepted implies dfs-accepted (loop-free fragment)"
    (QCheck.make
       ~print:(fun items ->
         match Ebpf.Asm.assemble items with
         | Ok insns -> Ebpf.Disasm.to_string insns
         | Error e -> e)
       QCheck.Gen.(
         let reg = int_range 0 7 in
         let small = int_range (-64) 64 in
         let chunk =
           oneof
             [ map2 (fun d v -> mov_i d v) reg small;
               map2 (fun d s -> add_r d s) reg reg;
               map2 (fun d v -> and_i d v) reg small;
               map2 (fun d v -> xor_i d v) reg small;
               (let* slot = int_range 1 8 in
                return (stdw r10 (-8 * slot) 5));
               (let* d = reg and* fld = int_bound 7 in
                return (ldxdw d r1 (fld * 8))) ]
         in
         let* body = list_size (int_range 2 20) chunk in
         let* guard_v = small in
         return (body @ [ jeq_i r0 guard_v "end"; xor_i r0 1; label "end";
                          mov_i r0 0; exit_ ])))
    (fun items ->
      match Ebpf.Asm.assemble items with
      | Error _ -> QCheck.assume_fail ()
      | Ok insns -> (
        let prog = Program.make ~name:"c" ~prog_type:Program.Kprobe insns in
        match P.verify ~map_def prog with
        | Error _ -> QCheck.assume_fail ()
        | Ok _ -> (
          match V.verify ~map_def prog with
          | Ok _ -> true
          | Error _ -> false)))

let suite =
  [
    Alcotest.test_case "minimal" `Quick test_minimal;
    Alcotest.test_case "basic rejections" `Quick test_basic_rejections;
    Alcotest.test_case "map pattern" `Quick test_map_pattern;
    Alcotest.test_case "native bounded loop" `Quick test_native_bounded_loop;
    Alcotest.test_case "loop-indexed access imprecise" `Quick test_loop_indexed_access_imprecise;
    Alcotest.test_case "unsupported helpers gated" `Quick test_unsupported_helpers_gated;
    Alcotest.test_case "precision: path correlation" `Quick test_precision_vs_dfs;
    Alcotest.test_case "scalability vs DFS" `Quick test_scalability_vs_dfs;
    QCheck_alcotest.to_alcotest conservativeness;
  ]
