(* Tests for the paper datasets (kerndata) and the calibrated call graph
   (callgraph): the numbers the figures are regenerated from must match
   what the paper states. *)

open Untenable
module Kver = Kerndata.Kver
module Analysis = Callgraph.Analysis
module Kernel_graph = Callgraph.Kernel_graph

(* ---------------- kerndata ---------------- *)

let test_kver_ordering () =
  Alcotest.(check bool) "3.18 < 6.1" true (Kver.compare Kver.V3_18 Kver.V6_1 < 0);
  Alcotest.(check int) "10 versions" 10 (List.length Kver.all);
  Alcotest.(check int) "9 figure points" 9 (List.length Kver.figure_axis);
  Alcotest.(check bool) "roundtrip" true (Kver.of_string "v5.15" = Some Kver.V5_15);
  Alcotest.(check bool) "bad version" true (Kver.of_string "v9.99" = None)

let test_fig2_dataset () =
  Alcotest.(check bool) "monotone growth" true Kerndata.Verifier_loc.monotone;
  Alcotest.(check bool) "starts ~2k" true
    (abs (Kerndata.Verifier_loc.first_loc - 2000) < 300);
  Alcotest.(check bool) "ends ~12k" true
    (abs (Kerndata.Verifier_loc.last_loc - 12000) < 700);
  Alcotest.(check bool) "growth ~6x" true
    (Kerndata.Verifier_loc.growth_factor > 5. && Kerndata.Verifier_loc.growth_factor < 7.);
  Alcotest.(check int) "9 points" 9 (List.length Kerndata.Verifier_loc.series)

let test_fig4_dataset () =
  Alcotest.(check bool) "~50 helpers per two years" true
    (Kerndata.Helper_history.per_two_years > 45.
    && Kerndata.Helper_history.per_two_years < 55.);
  Alcotest.(check int) "census" 249 Kerndata.Helper_history.census_5_18;
  let counts = List.map (fun p -> p.Kerndata.Helper_history.count)
      Kerndata.Helper_history.series in
  let rec mono = function a :: (b :: _ as r) -> a < b && mono r | _ -> true in
  Alcotest.(check bool) "strictly growing" true (mono counts)

let test_table1_totals () =
  let t, h, v = Kerndata.Bug_stats.paper_totals in
  Alcotest.(check int) "total 40" t Kerndata.Bug_stats.total;
  Alcotest.(check int) "helper 18" h Kerndata.Bug_stats.total_helpers;
  Alcotest.(check int) "verifier 22" v Kerndata.Bug_stats.total_verifier;
  Alcotest.(check int) "10 classes" 10 (List.length Kerndata.Bug_stats.classes);
  List.iter
    (fun (c : Kerndata.Bug_stats.clazz) ->
      Alcotest.(check int) (c.name ^ " rows sum") c.total (c.in_helpers + c.in_verifier))
    Kerndata.Bug_stats.classes

let test_retirement_taxonomy () =
  Alcotest.(check int) "16 retirable (the paper's count)" 16
    Kerndata.Retirement.retire_count;
  Alcotest.(check bool) "bpf_loop retired" true
    (List.exists
       (fun (e : Kerndata.Retirement.entry) ->
         e.helper = "bpf_loop" && e.disposition = Kerndata.Retirement.Retire)
       Kerndata.Retirement.entries);
  Alcotest.(check bool) "bpf_sys_bpf wrapped" true
    (List.exists
       (fun (e : Kerndata.Retirement.entry) ->
         e.helper = "bpf_sys_bpf" && e.disposition = Kerndata.Retirement.Wrap)
       Kerndata.Retirement.entries)

let test_table2_shape () =
  Alcotest.(check int) "6 properties" 6 (List.length Kerndata.Safety_props.table);
  let by_mech m =
    List.length
      (List.filter
         (fun (p : Kerndata.Safety_props.property) -> p.enforced_by = m)
         Kerndata.Safety_props.table)
  in
  Alcotest.(check int) "3 language rows" 3 (by_mech Kerndata.Safety_props.Language_safety);
  Alcotest.(check int) "3 runtime rows" 3
    (by_mech Kerndata.Safety_props.Runtime_protection)

(* ---------------- callgraph ---------------- *)

let test_graph_reachability () =
  let g = Callgraph.Graph.create () in
  let a = Callgraph.Graph.add_node g ~name:"a" in
  let b = Callgraph.Graph.add_node g ~name:"b" in
  let c = Callgraph.Graph.add_node g ~name:"c" in
  let d = Callgraph.Graph.add_node g ~name:"d" in
  Callgraph.Graph.add_edge g ~src:a ~dst:b;
  Callgraph.Graph.add_edge g ~src:b ~dst:c;
  Callgraph.Graph.add_edge g ~src:a ~dst:c;
  Alcotest.(check int) "a reaches 3" 3 (Callgraph.Graph.reachable_count g a);
  Alcotest.(check int) "c reaches itself" 1 (Callgraph.Graph.reachable_count g c);
  Alcotest.(check int) "d isolated" 1 (Callgraph.Graph.reachable_count g d);
  (* duplicate edges are not double-counted *)
  Callgraph.Graph.add_edge g ~src:a ~dst:b;
  Alcotest.(check int) "dedup edges" 3 (Callgraph.Graph.edge_count g)

let dist = lazy (Analysis.measure (Kernel_graph.build ()))

let test_calibration_census () =
  let d = Lazy.force dist in
  Alcotest.(check int) "249 helpers" 249 d.Analysis.n

let test_calibration_shares () =
  let d = Lazy.force dist in
  Alcotest.(check bool)
    (Printf.sprintf "52.2%% >= 30 nodes (got %.3f)" d.Analysis.share_ge30)
    true
    (Float.abs (d.Analysis.share_ge30 -. 0.522) < 0.005);
  Alcotest.(check bool)
    (Printf.sprintf "34.5%% >= 500 nodes (got %.3f)" d.Analysis.share_ge500)
    true
    (Float.abs (d.Analysis.share_ge500 -. 0.345) < 0.005)

let test_calibration_pins () =
  let d = Lazy.force dist in
  let nodes name =
    match Analysis.find d name with Some m -> m.Analysis.nodes | None -> -1
  in
  Alcotest.(check int) "pid_tgid = 1 (calls nothing)" 1 (nodes "bpf_get_current_pid_tgid");
  Alcotest.(check int) "sys_bpf = 4845" 4845 (nodes "bpf_sys_bpf");
  Alcotest.(check int) "min is 1" 1 d.Analysis.min_nodes;
  Alcotest.(check int) "max is sys_bpf" 4845 d.Analysis.max_nodes

let test_calibration_implemented_pins () =
  let d = Lazy.force dist in
  (* every implemented helper's BFS measurement equals its pinned value *)
  List.iter
    (fun (def : Helpers.Registry.def) ->
      match Analysis.find d def.Helpers.Registry.name with
      | Some m ->
        Alcotest.(check int) def.Helpers.Registry.name
          def.Helpers.Registry.callgraph_nodes m.Analysis.nodes
      | None -> Alcotest.failf "%s missing from graph" def.Helpers.Registry.name)
    Helpers.Registry.defs

let test_deterministic_generation () =
  let d1 = Analysis.measure (Kernel_graph.build ()) in
  let d2 = Analysis.measure (Kernel_graph.build ()) in
  Alcotest.(check bool) "same distribution every build" true
    (List.map (fun m -> (m.Analysis.helper, m.Analysis.nodes)) d1.Analysis.measurements
    = List.map (fun m -> (m.Analysis.helper, m.Analysis.nodes)) d2.Analysis.measurements)

let test_log_histogram_sums () =
  let d = Lazy.force dist in
  let buckets = Analysis.log_histogram d in
  Alcotest.(check int) "histogram covers everyone" 249
    (Array.fold_left ( + ) 0 buckets)

let suite =
  [
    Alcotest.test_case "kver ordering" `Quick test_kver_ordering;
    Alcotest.test_case "fig2 dataset" `Quick test_fig2_dataset;
    Alcotest.test_case "fig4 dataset" `Quick test_fig4_dataset;
    Alcotest.test_case "table1 totals" `Quick test_table1_totals;
    Alcotest.test_case "retirement taxonomy" `Quick test_retirement_taxonomy;
    Alcotest.test_case "table2 shape" `Quick test_table2_shape;
    Alcotest.test_case "graph reachability" `Quick test_graph_reachability;
    Alcotest.test_case "calibration: census" `Quick test_calibration_census;
    Alcotest.test_case "calibration: shares" `Quick test_calibration_shares;
    Alcotest.test_case "calibration: pins" `Quick test_calibration_pins;
    Alcotest.test_case "calibration: implemented pins" `Quick test_calibration_implemented_pins;
    Alcotest.test_case "deterministic generation" `Quick test_deterministic_generation;
    Alcotest.test_case "log histogram" `Quick test_log_histogram_sums;
  ]
