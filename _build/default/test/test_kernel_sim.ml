(* Tests for the simulated kernel substrate: guarded memory, refcounts,
   RCU stall detection, spinlocks, the memory pool, and kernel health. *)

open Untenable
module Kmem = Kernel_sim.Kmem
module Oops = Kernel_sim.Oops
module Rcu = Kernel_sim.Rcu
module Vclock = Kernel_sim.Vclock
module Refcount = Kernel_sim.Refcount
module Spinlock = Kernel_sim.Spinlock
module Mempool = Kernel_sim.Mempool
module Kobject = Kernel_sim.Kobject
module Kernel = Kernel_sim.Kernel

let t64 = Alcotest.testable (fun ppf v -> Format.fprintf ppf "%Ld" v) Int64.equal

let expect_oops kind f =
  match f () with
  | _ -> Alcotest.failf "expected %s oops" (Oops.kind_to_string kind)
  | exception Oops.Kernel_oops r ->
    Alcotest.(check string) "oops kind" (Oops.kind_to_string kind)
      (Oops.kind_to_string r.Oops.kind)

let fresh_mem () =
  let clock = Vclock.create () in
  (clock, Kmem.create clock)

(* ---------------- memory ---------------- *)

let test_load_store_roundtrip () =
  let _, mem = fresh_mem () in
  let r = Kmem.alloc mem ~size:64 ~kind:"test" ~name:"buf" () in
  List.iter
    (fun (size, value) ->
      Kmem.store mem ~size ~addr:r.Kmem.base ~value ~context:"t";
      Alcotest.check t64
        (Printf.sprintf "size %d" size)
        value
        (Kmem.load mem ~size ~addr:r.Kmem.base ~context:"t"))
    [ (1, 0xabL); (2, 0xbeefL); (4, 0xdeadbeefL); (8, 0x0123_4567_89ab_cdefL) ]

let test_little_endian () =
  let _, mem = fresh_mem () in
  let r = Kmem.alloc mem ~size:8 ~kind:"test" ~name:"le" () in
  Kmem.store mem ~size:8 ~addr:r.Kmem.base ~value:0x0102_0304_0506_0708L ~context:"t";
  Alcotest.check t64 "lowest byte first" 0x08L
    (Kmem.load mem ~size:1 ~addr:r.Kmem.base ~context:"t");
  Alcotest.check t64 "second byte" 0x07L
    (Kmem.load mem ~size:1 ~addr:(Int64.add r.Kmem.base 1L) ~context:"t")

let test_null_deref () =
  let _, mem = fresh_mem () in
  expect_oops Oops.Null_deref (fun () -> Kmem.load mem ~size:8 ~addr:0L ~context:"t");
  expect_oops Oops.Null_deref (fun () -> Kmem.load mem ~size:8 ~addr:0x800L ~context:"t")

let test_wild_pointer () =
  let _, mem = fresh_mem () in
  expect_oops Oops.Invalid_access (fun () ->
      Kmem.load mem ~size:8 ~addr:0xffff_9999_0000_0000L ~context:"t")

let test_out_of_bounds () =
  let _, mem = fresh_mem () in
  let r = Kmem.alloc mem ~size:16 ~kind:"test" ~name:"small" () in
  expect_oops Oops.Out_of_bounds (fun () ->
      Kmem.load mem ~size:8 ~addr:(Kmem.region_addr r 12) ~context:"t")

let test_use_after_free () =
  let _, mem = fresh_mem () in
  let r = Kmem.alloc mem ~size:16 ~kind:"test" ~name:"freed" () in
  Kmem.free mem r ~context:"t";
  expect_oops Oops.Use_after_free (fun () ->
      Kmem.load mem ~size:4 ~addr:r.Kmem.base ~context:"t")

let test_double_free () =
  let _, mem = fresh_mem () in
  let r = Kmem.alloc mem ~size:16 ~kind:"test" ~name:"df" () in
  Kmem.free mem r ~context:"t";
  expect_oops Oops.Double_free (fun () -> Kmem.free mem r ~context:"t")

let test_readonly () =
  let _, mem = fresh_mem () in
  let r = Kmem.alloc mem ~size:16 ~kind:"test" ~name:"ro" ~perm:Kmem.ro () in
  Alcotest.check t64 "read ok" 0L (Kmem.load mem ~size:8 ~addr:r.Kmem.base ~context:"t");
  expect_oops Oops.Permission (fun () ->
      Kmem.store mem ~size:8 ~addr:r.Kmem.base ~value:1L ~context:"t")

let test_cstring () =
  let _, mem = fresh_mem () in
  let r = Kmem.alloc mem ~size:32 ~kind:"test" ~name:"str" () in
  Kmem.store_bytes mem ~addr:r.Kmem.base ~src:(Bytes.of_string "hello\000junk")
    ~context:"t";
  Alcotest.(check string) "cstring stops at NUL" "hello"
    (Kmem.load_cstring mem ~addr:r.Kmem.base ~max:32 ~context:"t");
  Alcotest.(check string) "cstring respects max" "he"
    (Kmem.load_cstring mem ~addr:r.Kmem.base ~max:2 ~context:"t")

let test_guard_gap () =
  (* regions are separated by guard gaps: running off one region never
     silently lands in the next *)
  let _, mem = fresh_mem () in
  let a = Kmem.alloc mem ~size:16 ~kind:"test" ~name:"a" () in
  let _b = Kmem.alloc mem ~size:16 ~kind:"test" ~name:"b" () in
  expect_oops Oops.Invalid_access (fun () ->
      Kmem.load mem ~size:8 ~addr:(Int64.add a.Kmem.base 24L) ~context:"t")

(* ---------------- refcounts ---------------- *)

let test_refcount_lifecycle () =
  let clock = Vclock.create () in
  let reg = Refcount.create_registry clock in
  let released = ref false in
  let rc = Refcount.make reg ~what:"obj" ~released:(fun () -> released := true) () in
  Refcount.get reg rc;
  Alcotest.(check int) "count 2" 2 (Refcount.count rc);
  Refcount.put reg rc;
  Refcount.put reg rc;
  Alcotest.(check bool) "released at zero" true !released;
  Alcotest.(check int) "no live refs" 0 (List.length (Refcount.live reg))

let test_refcount_underflow () =
  let clock = Vclock.create () in
  let reg = Refcount.create_registry clock in
  let rc = Refcount.make reg ~what:"obj" () in
  Refcount.put reg rc;
  expect_oops Oops.Refcount_underflow (fun () -> Refcount.put reg rc)

(* ---------------- rcu ---------------- *)

let test_rcu_nesting () =
  let clock = Vclock.create () in
  let rcu = Rcu.create clock in
  Rcu.read_lock rcu;
  Rcu.read_lock rcu;
  Alcotest.(check bool) "in section" true (Rcu.in_critical_section rcu);
  Rcu.read_unlock rcu ~context:"t";
  Alcotest.(check bool) "still in section" true (Rcu.in_critical_section rcu);
  Rcu.read_unlock rcu ~context:"t";
  Alcotest.(check bool) "out" false (Rcu.in_critical_section rcu)

let test_rcu_imbalance () =
  let clock = Vclock.create () in
  let rcu = Rcu.create clock in
  match Rcu.read_unlock rcu ~context:"t" with
  | () -> Alcotest.fail "expected imbalance oops"
  | exception Oops.Kernel_oops _ -> ()

let test_rcu_stall () =
  let clock = Vclock.create () in
  let rcu = Rcu.create clock in
  rcu.Rcu.stall_threshold_ns <- 1000L;
  Rcu.read_lock rcu;
  Vclock.advance clock 500L;
  Rcu.check_stall rcu ~context:"t";
  Alcotest.(check int) "below threshold: no stall" 0 (Rcu.stall_count rcu);
  Vclock.advance clock 600L;
  Rcu.check_stall rcu ~context:"t";
  Alcotest.(check int) "stall detected" 1 (Rcu.stall_count rcu);
  (* rate limited: an immediate re-check does not double-report *)
  Rcu.check_stall rcu ~context:"t";
  Alcotest.(check int) "rate limited" 1 (Rcu.stall_count rcu);
  Vclock.advance clock 1100L;
  Rcu.check_stall rcu ~context:"t";
  Alcotest.(check int) "next interval reports again" 2 (Rcu.stall_count rcu)

let test_rcu_no_stall_outside_section () =
  let clock = Vclock.create () in
  let rcu = Rcu.create clock in
  rcu.Rcu.stall_threshold_ns <- 1L;
  Vclock.advance clock 1000L;
  Rcu.check_stall rcu ~context:"t";
  Alcotest.(check int) "no section, no stall" 0 (Rcu.stall_count rcu)

(* ---------------- spinlocks ---------------- *)

let test_spinlock () =
  let clock = Vclock.create () in
  let lock = Spinlock.make ~id:1 ~name:"l" clock in
  Spinlock.lock lock ~owner:"a";
  Alcotest.(check bool) "held" true (Spinlock.is_held lock);
  Spinlock.unlock lock ~owner:"a";
  Alcotest.(check bool) "free" false (Spinlock.is_held lock)

let test_spinlock_deadlock () =
  let clock = Vclock.create () in
  let lock = Spinlock.make ~id:1 ~name:"l" clock in
  Spinlock.lock lock ~owner:"a";
  expect_oops Oops.Deadlock (fun () -> Spinlock.lock lock ~owner:"a")

let test_spinlock_wrong_owner () =
  let clock = Vclock.create () in
  let lock = Spinlock.make ~id:1 ~name:"l" clock in
  Spinlock.lock lock ~owner:"a";
  match Spinlock.unlock lock ~owner:"b" with
  | () -> Alcotest.fail "expected oops"
  | exception Oops.Kernel_oops _ -> ()

(* ---------------- mempool ---------------- *)

let test_mempool () =
  let clock, mem = fresh_mem () in
  let pool = Mempool.create mem clock ~chunk_size:32 ~capacity:2 in
  let a = Option.get (Mempool.alloc pool) in
  let b = Option.get (Mempool.alloc pool) in
  Alcotest.(check bool) "exhausted" true (Mempool.alloc pool = None);
  Mempool.free pool a ~context:"t";
  Alcotest.(check bool) "chunk comes back" true (Mempool.alloc pool <> None);
  Alcotest.(check int) "leak detection" 2 (List.length (Mempool.leaked pool));
  ignore b

let test_mempool_double_free () =
  let clock, mem = fresh_mem () in
  let pool = Mempool.create mem clock ~chunk_size:32 ~capacity:2 in
  let a = Option.get (Mempool.alloc pool) in
  Mempool.free pool a ~context:"t";
  expect_oops Oops.Double_free (fun () -> Mempool.free pool a ~context:"t")

let test_mempool_scrubbed () =
  let clock, mem = fresh_mem () in
  let pool = Mempool.create mem clock ~chunk_size:16 ~capacity:1 in
  let a = Option.get (Mempool.alloc pool) in
  Kmem.store mem ~size:8 ~addr:a ~value:0x4141414141414141L ~context:"t";
  Mempool.free pool a ~context:"t";
  let b = Option.get (Mempool.alloc pool) in
  Alcotest.check t64 "no stale data" 0L (Kmem.load mem ~size:8 ~addr:b ~context:"t")

(* ---------------- kobjects & kernel ---------------- *)

let test_task_fields () =
  let kernel = Kernel.create () in
  let task = Kernel.add_task kernel ~pid:77 ~tgid:78 ~comm:"bash" in
  Alcotest.check t64 "pid at offset 0" 77L
    (Kmem.load kernel.Kernel.mem ~size:4 ~addr:(Kobject.task_addr task) ~context:"t");
  Alcotest.check t64 "tgid at offset 4" 78L
    (Kmem.load kernel.Kernel.mem ~size:4
       ~addr:(Int64.add (Kobject.task_addr task) 4L)
       ~context:"t")

let test_sock_lookup () =
  let kernel = Kernel.create () in
  let _ = Kernel.add_sock kernel ~port:80 ~state:Kobject.Listen in
  Alcotest.(check bool) "found" true (Kernel.find_sock kernel ~port:80 <> None);
  Alcotest.(check bool) "missing" true (Kernel.find_sock kernel ~port:81 = None)

let test_kernel_health () =
  let kernel = Kernel.create () in
  Kernel.snapshot_refs kernel;
  Alcotest.(check bool) "fresh kernel healthy" true
    (Kernel.healthy (Kernel.health kernel));
  let task = Kernel.add_task kernel ~pid:1_000 ~tgid:1_000 ~comm:"leaky" in
  Kernel.snapshot_refs kernel;
  Refcount.get kernel.Kernel.refs task.Kobject.task_ref;
  let h = Kernel.health kernel in
  Alcotest.(check int) "leak visible" 1 (List.length h.Kernel.leaked_refs)

let test_kernel_protect () =
  let kernel = Kernel.create () in
  (match
     Kernel.protect kernel (fun () ->
         Kmem.load kernel.Kernel.mem ~size:8 ~addr:0L ~context:"t")
   with
  | Ok _ -> Alcotest.fail "should have oopsed"
  | Error _ -> ());
  Alcotest.(check bool) "kernel recorded the oops" true (Kernel.is_dead kernel)

let test_vclock () =
  let clock = Vclock.create () in
  Vclock.advance clock 5L;
  Vclock.advance clock 7L;
  Alcotest.check t64 "monotone sum" 12L (Vclock.now clock);
  Alcotest.(check string) "duration pp" "1.50s"
    (Format.asprintf "%a" Vclock.pp_duration 1_500_000_000L)

let suite =
  [
    Alcotest.test_case "load/store roundtrip" `Quick test_load_store_roundtrip;
    Alcotest.test_case "little endian" `Quick test_little_endian;
    Alcotest.test_case "NULL dereference oops" `Quick test_null_deref;
    Alcotest.test_case "wild pointer oops" `Quick test_wild_pointer;
    Alcotest.test_case "out of bounds oops" `Quick test_out_of_bounds;
    Alcotest.test_case "use after free oops" `Quick test_use_after_free;
    Alcotest.test_case "double free oops" `Quick test_double_free;
    Alcotest.test_case "read-only permission" `Quick test_readonly;
    Alcotest.test_case "cstring load" `Quick test_cstring;
    Alcotest.test_case "guard gap between regions" `Quick test_guard_gap;
    Alcotest.test_case "refcount lifecycle" `Quick test_refcount_lifecycle;
    Alcotest.test_case "refcount underflow" `Quick test_refcount_underflow;
    Alcotest.test_case "rcu nesting" `Quick test_rcu_nesting;
    Alcotest.test_case "rcu imbalance" `Quick test_rcu_imbalance;
    Alcotest.test_case "rcu stall detection" `Quick test_rcu_stall;
    Alcotest.test_case "rcu no stall outside section" `Quick test_rcu_no_stall_outside_section;
    Alcotest.test_case "spinlock" `Quick test_spinlock;
    Alcotest.test_case "spinlock deadlock" `Quick test_spinlock_deadlock;
    Alcotest.test_case "spinlock wrong owner" `Quick test_spinlock_wrong_owner;
    Alcotest.test_case "mempool" `Quick test_mempool;
    Alcotest.test_case "mempool double free" `Quick test_mempool_double_free;
    Alcotest.test_case "mempool scrubs chunks" `Quick test_mempool_scrubbed;
    Alcotest.test_case "task fields" `Quick test_task_fields;
    Alcotest.test_case "sock lookup" `Quick test_sock_lookup;
    Alcotest.test_case "kernel health/leaks" `Quick test_kernel_health;
    Alcotest.test_case "kernel protect records oops" `Quick test_kernel_protect;
    Alcotest.test_case "vclock" `Quick test_vclock;
  ]
