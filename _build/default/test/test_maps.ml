(* Map substrate tests, including a model-based qcheck suite comparing the
   hash map against a reference association list. *)

open Untenable
module Bpf_map = Maps.Bpf_map
module Ringbuf = Maps.Ringbuf
module Kernel = Kernel_sim.Kernel
module Kmem = Kernel_sim.Kmem

let t64 = Alcotest.testable (fun ppf v -> Format.fprintf ppf "%Ld" v) Int64.equal

let world_map ?(kind = Bpf_map.Array) ?(key_size = 4) ?(value_size = 8)
    ?(max_entries = 8) ?lock_off () =
  let kernel = Kernel.create () in
  let map =
    Bpf_map.create_map kernel ~id:1
      { Bpf_map.name = "t"; kind; key_size; value_size; max_entries; lock_off }
  in
  (kernel, map)

let key i =
  let b = Bytes.make 4 '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int i);
  b

let value v =
  let b = Bytes.make 8 '\000' in
  Bytes.set_int64_le b 0 v;
  b

let read_value kernel addr =
  Kmem.load kernel.Kernel.mem ~size:8 ~addr ~context:"test"

(* ---------------- array maps ---------------- *)

let test_array_lookup_bounds () =
  let _, map = world_map () in
  Alcotest.(check bool) "idx 0 hits" true (Bpf_map.lookup map ~key:(key 0) <> None);
  Alcotest.(check bool) "idx 7 hits" true (Bpf_map.lookup map ~key:(key 7) <> None);
  Alcotest.(check bool) "idx 8 misses" true (Bpf_map.lookup map ~key:(key 8) = None)

let test_array_update_read () =
  let kernel, map = world_map () in
  (match Bpf_map.update map kernel.Kernel.mem ~key:(key 3) ~value:(value 99L) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "update failed");
  let addr = Option.get (Bpf_map.lookup map ~key:(key 3)) in
  Alcotest.check t64 "read back" 99L (read_value kernel addr)

let test_array_no_delete () =
  let _, map = world_map () in
  Alcotest.(check bool) "arrays cannot delete" true
    (Bpf_map.delete map ~key:(key 0) = Error Bpf_map.EINVAL)

let test_array_update_oob () =
  let kernel, map = world_map () in
  Alcotest.(check bool) "oob update E2BIG" true
    (Bpf_map.update map kernel.Kernel.mem ~key:(key 99) ~value:(value 1L)
     = Error Bpf_map.E2BIG)

let test_bad_value_size () =
  let kernel, map = world_map () in
  Alcotest.(check bool) "wrong value size" true
    (Bpf_map.update map kernel.Kernel.mem ~key:(key 0) ~value:(Bytes.make 3 'x')
     = Error Bpf_map.EINVAL)

(* ---------------- hash maps ---------------- *)

let test_hash_basic () =
  let kernel, map = world_map ~kind:Bpf_map.Hash () in
  Alcotest.(check bool) "miss before insert" true (Bpf_map.lookup map ~key:(key 5) = None);
  (match Bpf_map.update map kernel.Kernel.mem ~key:(key 5) ~value:(value 55L) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "insert failed");
  let addr = Option.get (Bpf_map.lookup map ~key:(key 5)) in
  Alcotest.check t64 "hit after insert" 55L (read_value kernel addr);
  Alcotest.(check bool) "delete" true (Bpf_map.delete map ~key:(key 5) = Ok ());
  Alcotest.(check bool) "miss after delete" true (Bpf_map.lookup map ~key:(key 5) = None);
  Alcotest.(check bool) "delete missing = ENOENT" true
    (Bpf_map.delete map ~key:(key 5) = Error Bpf_map.ENOENT)

let test_hash_full () =
  let kernel, map = world_map ~kind:Bpf_map.Hash ~max_entries:2 () in
  ignore (Bpf_map.update map kernel.Kernel.mem ~key:(key 1) ~value:(value 1L));
  ignore (Bpf_map.update map kernel.Kernel.mem ~key:(key 2) ~value:(value 2L));
  Alcotest.(check bool) "full = E2BIG" true
    (Bpf_map.update map kernel.Kernel.mem ~key:(key 3) ~value:(value 3L)
     = Error Bpf_map.E2BIG);
  (* overwriting an existing key is fine when full *)
  Alcotest.(check bool) "overwrite ok" true
    (Bpf_map.update map kernel.Kernel.mem ~key:(key 1) ~value:(value 11L) = Ok ())

let test_lru_eviction () =
  let kernel, map = world_map ~kind:Bpf_map.Lru_hash ~max_entries:2 () in
  ignore (Bpf_map.update map kernel.Kernel.mem ~key:(key 1) ~value:(value 1L));
  ignore (Bpf_map.update map kernel.Kernel.mem ~key:(key 2) ~value:(value 2L));
  (* touch key 1 so key 2 is the LRU victim *)
  ignore (Bpf_map.lookup map ~key:(key 1));
  ignore (Bpf_map.update map kernel.Kernel.mem ~key:(key 3) ~value:(value 3L));
  Alcotest.(check bool) "key 1 survives (recently used)" true
    (Bpf_map.lookup map ~key:(key 1) <> None);
  Alcotest.(check bool) "key 2 evicted" true (Bpf_map.lookup map ~key:(key 2) = None);
  Alcotest.(check bool) "key 3 present" true (Bpf_map.lookup map ~key:(key 3) <> None)

let test_percpu_isolation () =
  let kernel, map = world_map ~kind:Bpf_map.Percpu_array ~max_entries:2 () in
  (* write on cpu 0, then observe cpu 1's copy is independent *)
  kernel.Kernel.cpu <- 0;
  let a0 = Option.get (Bpf_map.lookup map ~key:(key 0)) in
  Kmem.store kernel.Kernel.mem ~size:8 ~addr:a0 ~value:11L ~context:"t";
  kernel.Kernel.cpu <- 1;
  let a1 = Option.get (Bpf_map.lookup map ~key:(key 0)) in
  Alcotest.(check bool) "different backing" false (Int64.equal a0 a1);
  Alcotest.check t64 "cpu1 copy untouched by direct store" 0L (read_value kernel a1);
  kernel.Kernel.cpu <- 0;
  Alcotest.check t64 "cpu0 copy kept" 11L (read_value kernel a0)

(* ---------------- queue / stack maps ---------------- *)

let test_queue_fifo () =
  let kernel, map = world_map ~kind:Bpf_map.Queue ~max_entries:4 () in
  let mem = kernel.Kernel.mem in
  List.iter (fun v -> ignore (Bpf_map.push map mem ~value:(value v))) [ 1L; 2L; 3L ];
  let pop () = match Bpf_map.pop map mem with
    | Ok b -> Bytes.get_int64_le b 0
    | Error _ -> -1L
  in
  Alcotest.check t64 "fifo 1" 1L (pop ());
  Alcotest.check t64 "fifo 2" 2L (pop ());
  Alcotest.check t64 "fifo 3" 3L (pop ());
  Alcotest.(check bool) "empty" true (Bpf_map.pop map mem = Error Bpf_map.ENOENT)

let test_stack_lifo () =
  let kernel, map = world_map ~kind:Bpf_map.Stack ~max_entries:4 () in
  let mem = kernel.Kernel.mem in
  List.iter (fun v -> ignore (Bpf_map.push map mem ~value:(value v))) [ 1L; 2L; 3L ];
  let pop () = match Bpf_map.pop map mem with
    | Ok b -> Bytes.get_int64_le b 0
    | Error _ -> -1L
  in
  Alcotest.check t64 "lifo 3" 3L (pop ());
  Alcotest.check t64 "lifo 2" 2L (pop ());
  Alcotest.check t64 "lifo 1" 1L (pop ())

let test_queue_peek_and_full () =
  let kernel, map = world_map ~kind:Bpf_map.Queue ~max_entries:2 () in
  let mem = kernel.Kernel.mem in
  ignore (Bpf_map.push map mem ~value:(value 7L));
  (match Bpf_map.peek map mem with
  | Ok b -> Alcotest.check t64 "peek sees front" 7L (Bytes.get_int64_le b 0)
  | Error _ -> Alcotest.fail "peek failed");
  Alcotest.(check int) "peek does not consume" 1 (Bpf_map.entries map);
  ignore (Bpf_map.push map mem ~value:(value 8L));
  Alcotest.(check bool) "full" true
    (Bpf_map.push map mem ~value:(value 9L) = Error Bpf_map.E2BIG);
  (* slots recycle after pop *)
  ignore (Bpf_map.pop map mem);
  Alcotest.(check bool) "slot recycled" true
    (Bpf_map.push map mem ~value:(value 9L) = Ok ())

(* ---------------- ringbuf ---------------- *)

let fresh_rb ?(capacity = 256) () =
  let kernel = Kernel.create () in
  (kernel, Ringbuf.create kernel.Kernel.mem ~capacity)

let test_ringbuf_submit_consume () =
  let kernel, rb = fresh_rb () in
  let a = Option.get (Ringbuf.reserve rb ~size:8) in
  Kmem.store kernel.Kernel.mem ~size:8 ~addr:a ~value:42L ~context:"t";
  Alcotest.(check bool) "submit ok" true (Ringbuf.submit rb a = Ok ());
  (match Ringbuf.consume rb with
  | [ record ] -> Alcotest.check t64 "payload" 42L (Bytes.get_int64_le record 0)
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l));
  Alcotest.(check int) "drained" 0 (List.length (Ringbuf.consume rb))

let test_ringbuf_discard () =
  let _, rb = fresh_rb () in
  let a = Option.get (Ringbuf.reserve rb ~size:8) in
  Alcotest.(check bool) "discard ok" true (Ringbuf.discard rb a = Ok ());
  Alcotest.(check int) "nothing submitted" 0 (List.length (Ringbuf.consume rb))

let test_ringbuf_double_complete () =
  let _, rb = fresh_rb () in
  let a = Option.get (Ringbuf.reserve rb ~size:8) in
  ignore (Ringbuf.submit rb a);
  Alcotest.(check bool) "double submit detected" true
    (Ringbuf.submit rb a = Error Ringbuf.Already_completed);
  Alcotest.(check bool) "bogus addr" true
    (Ringbuf.submit rb 0x1234L = Error Ringbuf.Not_reserved)

let test_ringbuf_capacity () =
  let _, rb = fresh_rb ~capacity:64 () in
  Alcotest.(check bool) "first fits" true (Ringbuf.reserve rb ~size:24 <> None);
  Alcotest.(check bool) "second fits" true (Ringbuf.reserve rb ~size:16 <> None);
  Alcotest.(check bool) "third does not" true (Ringbuf.reserve rb ~size:24 = None);
  Alcotest.(check int) "outstanding tracked" 2
    (List.length (Ringbuf.outstanding_reservations rb))

let test_ringbuf_reuse_after_drain () =
  let _, rb = fresh_rb ~capacity:64 () in
  let a = Option.get (Ringbuf.reserve rb ~size:40) in
  ignore (Ringbuf.submit rb a);
  ignore (Ringbuf.consume rb);
  Alcotest.(check bool) "space reclaimed after consume" true
    (Ringbuf.reserve rb ~size:40 <> None)

(* ---------------- registry ---------------- *)

let test_registry () =
  let kernel = Kernel.create () in
  let reg = Bpf_map.Registry.create () in
  let m1 =
    Bpf_map.Registry.register reg kernel
      { Bpf_map.name = "a"; kind = Bpf_map.Array; key_size = 4; value_size = 8;
        max_entries = 4; lock_off = None }
  in
  let m2 =
    Bpf_map.Registry.register reg kernel
      { Bpf_map.name = "b"; kind = Bpf_map.Hash; key_size = 4; value_size = 8;
        max_entries = 4; lock_off = None }
  in
  Alcotest.(check bool) "ids distinct" true (m1.Bpf_map.id <> m2.Bpf_map.id);
  Alcotest.(check bool) "find by id" true
    (Bpf_map.Registry.find reg m1.Bpf_map.id <> None);
  Alcotest.(check int) "all" 2 (List.length (Bpf_map.Registry.all reg))

(* ---------------- model-based property ---------------- *)

type op = Insert of int * int64 | Delete of int | Lookup of int

let gen_op =
  QCheck.Gen.(
    oneof
      [ map2 (fun k v -> Insert (k, Int64.of_int v)) (int_bound 15) nat;
        map (fun k -> Delete k) (int_bound 15);
        map (fun k -> Lookup k) (int_bound 15) ])

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Insert (k, v) -> Printf.sprintf "I(%d,%Ld)" k v
             | Delete k -> Printf.sprintf "D(%d)" k
             | Lookup k -> Printf.sprintf "L(%d)" k)
           ops))
    QCheck.Gen.(list_size (int_bound 60) gen_op)

let hash_model_test =
  QCheck.Test.make ~count:200 ~name:"hash map behaves like an association list"
    arb_ops
    (fun ops ->
      let kernel, map = world_map ~kind:Bpf_map.Hash ~max_entries:16 () in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          match op with
          | Insert (k, v) -> (
            match Bpf_map.update map kernel.Kernel.mem ~key:(key k) ~value:(value v) with
            | Ok () ->
              Hashtbl.replace model k v;
              true
            | Error Bpf_map.E2BIG -> not (Hashtbl.mem model k) && Hashtbl.length model >= 16
            | Error _ -> false)
          | Delete k ->
            let expected = Hashtbl.mem model k in
            Hashtbl.remove model k;
            (Bpf_map.delete map ~key:(key k) = Ok ()) = expected
          | Lookup k -> (
            match (Bpf_map.lookup map ~key:(key k), Hashtbl.find_opt model k) with
            | None, None -> true
            | Some addr, Some v -> Int64.equal (read_value kernel addr) v
            | _ -> false))
        ops)

let suite =
  [
    Alcotest.test_case "array lookup bounds" `Quick test_array_lookup_bounds;
    Alcotest.test_case "array update/read" `Quick test_array_update_read;
    Alcotest.test_case "array cannot delete" `Quick test_array_no_delete;
    Alcotest.test_case "array oob update" `Quick test_array_update_oob;
    Alcotest.test_case "bad value size" `Quick test_bad_value_size;
    Alcotest.test_case "hash basic ops" `Quick test_hash_basic;
    Alcotest.test_case "hash full" `Quick test_hash_full;
    Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
    Alcotest.test_case "percpu isolation" `Quick test_percpu_isolation;
    Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
    Alcotest.test_case "stack lifo" `Quick test_stack_lifo;
    Alcotest.test_case "queue peek/full/recycle" `Quick test_queue_peek_and_full;
    Alcotest.test_case "ringbuf submit/consume" `Quick test_ringbuf_submit_consume;
    Alcotest.test_case "ringbuf discard" `Quick test_ringbuf_discard;
    Alcotest.test_case "ringbuf double complete" `Quick test_ringbuf_double_complete;
    Alcotest.test_case "ringbuf capacity" `Quick test_ringbuf_capacity;
    Alcotest.test_case "ringbuf reuse after drain" `Quick test_ringbuf_reuse_after_drain;
    Alcotest.test_case "registry" `Quick test_registry;
    QCheck_alcotest.to_alcotest hash_model_test;
  ]
