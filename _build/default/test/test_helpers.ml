(* Helper-function tests: the implemented table, the bug database windows,
   and the behaviour of each helper group through the execution context. *)

open Untenable
module Hctx = Helpers.Hctx
module Bugdb = Helpers.Bugdb
module Registry = Helpers.Registry
module Resources = Helpers.Resources
module Bpf_map = Maps.Bpf_map
module Ringbuf = Maps.Ringbuf
module Kernel = Kernel_sim.Kernel
module Kmem = Kernel_sim.Kmem
module Kobject = Kernel_sim.Kobject
module Oops = Kernel_sim.Oops
module Kver = Kerndata.Kver
module World = Framework.World

let t64 = Alcotest.testable (fun ppf v -> Format.fprintf ppf "%Ld" v) Int64.equal

let fresh () =
  let world = World.create_populated () in
  (world, World.new_hctx world)

let with_map ?(kind = Bpf_map.Array) ?(value_size = 8) ?(max_entries = 8) world name =
  World.register_map world
    { Bpf_map.name; kind; key_size = 4; value_size; max_entries; lock_off = None }

let stack_buf world size =
  (Kmem.alloc world.World.kernel.Kernel.mem ~size ~kind:"stack" ~name:"buf" ()).Kmem.base

let put_key world addr k =
  Kmem.store world.World.kernel.Kernel.mem ~size:4 ~addr ~value:(Int64.of_int k)
    ~context:"test"

(* ---------------- registry ---------------- *)

let test_registry_integrity () =
  Alcotest.(check bool) "40+ helpers implemented" true (Registry.count >= 40);
  Alcotest.(check int) "ids unique" Registry.count (Hashtbl.length Registry.by_id);
  Alcotest.(check bool) "pid_tgid pinned to 1" true
    (Registry.pinned_callgraph_nodes "bpf_get_current_pid_tgid" = Some 1);
  Alcotest.(check bool) "sys_bpf pinned to 4845" true
    (Registry.pinned_callgraph_nodes "bpf_sys_bpf" = Some 4845)

let test_registry_versions_monotone () =
  let counts =
    List.map (fun v -> List.length (Registry.available ~version:v)) Kver.all
  in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "availability grows with version" true (mono counts)

(* ---------------- bugdb ---------------- *)

let test_bugdb_window () =
  let at v = Bugdb.create ~version:v () in
  (* task-storage bug: introduced 5.10, fixed 5.15 *)
  Alcotest.(check bool) "inactive before introduction" false
    (Bugdb.active (at Kver.V5_4) "hbug:task-storage-null-owner");
  Alcotest.(check bool) "active in window" true
    (Bugdb.active (at Kver.V5_10) "hbug:task-storage-null-owner");
  Alcotest.(check bool) "inactive after fix" false
    (Bugdb.active (at Kver.V5_15) "hbug:task-storage-null-owner");
  (* unfixed bug stays active *)
  Alcotest.(check bool) "unfixed stays active" true
    (Bugdb.active (at Kver.V6_1) "hbug:cve-2022-2785-sys-bpf")

let test_bugdb_force () =
  let db = Bugdb.create ~version:Kver.V5_18 () in
  Bugdb.force_off db "hbug:cve-2022-2785-sys-bpf";
  Alcotest.(check bool) "force off wins" false
    (Bugdb.active db "hbug:cve-2022-2785-sys-bpf");
  Bugdb.force_on db "hbug:task-storage-null-owner";
  Alcotest.(check bool) "force on wins" true
    (Bugdb.active db "hbug:task-storage-null-owner")

(* ---------------- map helpers ---------------- *)

let test_map_helpers_roundtrip () =
  let world, hctx = fresh () in
  let m = with_map world "m" in
  let kbuf = stack_buf world 8 and vbuf = stack_buf world 8 in
  put_key world kbuf 3;
  Kmem.store world.World.kernel.Kernel.mem ~size:8 ~addr:vbuf ~value:77L ~context:"t";
  Alcotest.check t64 "update ok" 0L
    (Helpers.Helpers_map.update_elem hctx
       [| Int64.of_int m.Bpf_map.id; kbuf; vbuf; 0L; 0L |]);
  let addr =
    Helpers.Helpers_map.lookup_elem hctx [| Int64.of_int m.Bpf_map.id; kbuf; 0L; 0L; 0L |]
  in
  Alcotest.check t64 "lookup returns value" 77L
    (Kmem.load world.World.kernel.Kernel.mem ~size:8 ~addr ~context:"t")

let test_map_helper_miss () =
  let world, hctx = fresh () in
  let m = with_map ~kind:Bpf_map.Hash world "h" in
  let kbuf = stack_buf world 8 in
  put_key world kbuf 5;
  Alcotest.check t64 "miss returns NULL" 0L
    (Helpers.Helpers_map.lookup_elem hctx
       [| Int64.of_int m.Bpf_map.id; kbuf; 0L; 0L; 0L |])

let test_for_each_map_elem () =
  let world, hctx = fresh () in
  let m = with_map world "m" ~max_entries:4 in
  let counter = ref 0 in
  hctx.Hctx.call_subprog <- Some (fun _pc _args -> incr counter; 0L);
  let ret =
    Helpers.Helpers_map.for_each_map_elem hctx
      [| Int64.of_int m.Bpf_map.id; 0L; 0L; 0L; 0L |]
  in
  Alcotest.check t64 "visits every element" 4L ret;
  Alcotest.(check int) "callback ran per element" 4 !counter

(* ---------------- task helpers ---------------- *)

let test_pid_tgid () =
  let _, hctx = fresh () in
  let v = Helpers.Helpers_task.get_current_pid_tgid hctx [||] in
  Alcotest.check t64 "pid in low bits" 1234L (Int64.logand v 0xffff_ffffL);
  Alcotest.check t64 "tgid in high bits" 1234L (Int64.shift_right_logical v 32)

let test_current_comm () =
  let world, hctx = fresh () in
  let buf = stack_buf world 16 in
  ignore (Helpers.Helpers_task.get_current_comm hctx [| buf; 16L; 0L; 0L; 0L |]);
  Alcotest.(check string) "comm copied" "nginx"
    (Kmem.load_cstring world.World.kernel.Kernel.mem ~addr:buf ~max:16 ~context:"t")

let test_task_storage_roundtrip () =
  let world, hctx = fresh () in
  let m = with_map ~kind:Bpf_map.Hash world "tls" in
  let task_addr = Kobject.task_addr world.World.kernel.Kernel.current in
  let addr =
    Helpers.Helpers_task.task_storage_get hctx
      [| Int64.of_int m.Bpf_map.id; task_addr; 0L; 1L (* create *); 0L |]
  in
  Alcotest.(check bool) "storage created" true (not (Int64.equal addr 0L));
  Kmem.store world.World.kernel.Kernel.mem ~size:8 ~addr ~value:5L ~context:"t";
  let again =
    Helpers.Helpers_task.task_storage_get hctx
      [| Int64.of_int m.Bpf_map.id; task_addr; 0L; 0L; 0L |]
  in
  Alcotest.check t64 "same slot" addr again;
  Alcotest.check t64 "delete" 0L
    (Helpers.Helpers_task.task_storage_delete hctx
       [| Int64.of_int m.Bpf_map.id; task_addr; 0L; 0L; 0L |])

let test_get_task_stack_fixed_no_leak () =
  let world, hctx = fresh () in
  Bugdb.force_off world.World.bugs "hbug:get-task-stack-no-ref";
  Kernel.snapshot_refs world.World.kernel;
  let buf = stack_buf world 64 in
  let task_addr = Kobject.task_addr world.World.kernel.Kernel.current in
  let n =
    Helpers.Helpers_task.get_task_stack hctx [| task_addr; buf; 64L; 0L; 0L |]
  in
  Alcotest.check t64 "copied 64 bytes" 64L n;
  Alcotest.(check int) "no ref leaked" 0
    (List.length (Kernel.health world.World.kernel).Kernel.leaked_refs)

let test_get_task_stack_buggy_leaks () =
  let world, hctx = fresh () in
  Bugdb.force_on world.World.bugs "hbug:get-task-stack-no-ref";
  Kernel.snapshot_refs world.World.kernel;
  let buf = stack_buf world 64 in
  let task_addr = Kobject.task_addr world.World.kernel.Kernel.current in
  ignore (Helpers.Helpers_task.get_task_stack hctx [| task_addr; buf; 64L; 0L; 0L |]);
  Alcotest.(check int) "ref leaked" 1
    (List.length (Kernel.health world.World.kernel).Kernel.leaked_refs)

(* ---------------- sock helpers ---------------- *)

let test_sk_lookup_release () =
  let world, hctx = fresh () in
  Kernel.snapshot_refs world.World.kernel;
  let addr = Helpers.Helpers_sock.sk_lookup_tcp hctx [| 8080L; 0L; 0L; 0L; 0L |] in
  Alcotest.(check bool) "found" true (not (Int64.equal addr 0L));
  Alcotest.(check int) "resource recorded" 1 (Resources.outstanding hctx.Hctx.resources);
  Alcotest.check t64 "release ok" 0L
    (Helpers.Helpers_sock.sk_release hctx [| addr; 0L; 0L; 0L; 0L |]);
  Alcotest.(check int) "no leak" 0
    (List.length (Kernel.health world.World.kernel).Kernel.leaked_refs)

let test_sk_lookup_miss () =
  let _, hctx = fresh () in
  Alcotest.check t64 "no sock on port" 0L
    (Helpers.Helpers_sock.sk_lookup_tcp hctx [| 9999L; 0L; 0L; 0L; 0L |])

(* ---------------- string helpers ---------------- *)

let strtol_on world hctx s =
  let buf = stack_buf world 32 and res = stack_buf world 8 in
  Kmem.store_bytes world.World.kernel.Kernel.mem ~addr:buf
    ~src:(Bytes.of_string (s ^ "\000")) ~context:"t";
  let ret =
    Helpers.Helpers_string.strtol hctx
      [| buf; Int64.of_int (String.length s); 0L; res; 0L |]
  in
  (ret, Kmem.load world.World.kernel.Kernel.mem ~size:8 ~addr:res ~context:"t")

let test_strtol () =
  let world, hctx = fresh () in
  let consumed, v = strtol_on world hctx "-4711" in
  Alcotest.check t64 "value" (-4711L) v;
  Alcotest.check t64 "consumed" 5L consumed;
  let consumed2, v2 = strtol_on world hctx "123abc" in
  Alcotest.check t64 "stops at non-digit" 123L v2;
  Alcotest.check t64 "consumed2" 3L consumed2;
  let err, _ = strtol_on world hctx "nope" in
  Alcotest.(check bool) "invalid input errors" true (Int64.compare err 0L < 0)

let test_strtoul_rejects_negative () =
  let world, hctx = fresh () in
  let buf = stack_buf world 32 and res = stack_buf world 8 in
  Kmem.store_bytes world.World.kernel.Kernel.mem ~addr:buf
    ~src:(Bytes.of_string "-5\000") ~context:"t";
  let ret = Helpers.Helpers_string.strtoul hctx [| buf; 2L; 0L; res; 0L |] in
  Alcotest.(check bool) "negative rejected" true (Int64.compare ret 0L < 0)

let test_strncmp () =
  let world, hctx = fresh () in
  let b1 = stack_buf world 16 and b2 = stack_buf world 16 in
  Kmem.store_bytes world.World.kernel.Kernel.mem ~addr:b1
    ~src:(Bytes.of_string "alpha\000") ~context:"t";
  Kmem.store_bytes world.World.kernel.Kernel.mem ~addr:b2
    ~src:(Bytes.of_string "beta\000") ~context:"t";
  let r = Helpers.Helpers_string.strncmp hctx [| b1; 8L; b2; 0L; 0L |] in
  Alcotest.(check bool) "alpha < beta" true (Int64.compare r 0L < 0);
  let r2 = Helpers.Helpers_string.strncmp hctx [| b1; 8L; b1; 0L; 0L |] in
  Alcotest.check t64 "equal strings" 0L r2

let test_snprintf () =
  let world, hctx = fresh () in
  let out = stack_buf world 64 and fmt = stack_buf world 32 and data = stack_buf world 16 in
  Kmem.store_bytes world.World.kernel.Kernel.mem ~addr:fmt
    ~src:(Bytes.of_string "n=%d x=%x\000") ~context:"t";
  Kmem.store world.World.kernel.Kernel.mem ~size:8 ~addr:data ~value:42L ~context:"t";
  Kmem.store world.World.kernel.Kernel.mem ~size:8 ~addr:(Int64.add data 8L)
    ~value:255L ~context:"t";
  ignore (Helpers.Helpers_string.snprintf hctx [| out; 64L; fmt; data; 16L |]);
  Alcotest.(check string) "formatted" "n=42 x=ff"
    (Kmem.load_cstring world.World.kernel.Kernel.mem ~addr:out ~max:64 ~context:"t")

(* ---------------- probe read ---------------- *)

let test_probe_read_efault () =
  let world, hctx = fresh () in
  let dst = stack_buf world 16 in
  Alcotest.check t64 "bad source -> -EFAULT" (-14L)
    (Helpers.Helpers_probe.probe_read_kernel hctx [| dst; 8L; 0x10L; 0L; 0L |]);
  Alcotest.(check bool) "kernel survives" false (Kernel.is_dead world.World.kernel)

let test_probe_read_ok () =
  let world, hctx = fresh () in
  let dst = stack_buf world 16 and src = stack_buf world 16 in
  Kmem.store world.World.kernel.Kernel.mem ~size:8 ~addr:src ~value:99L ~context:"t";
  Alcotest.check t64 "read ok" 0L
    (Helpers.Helpers_probe.probe_read_kernel hctx [| dst; 8L; src; 0L; 0L |]);
  Alcotest.check t64 "copied" 99L
    (Kmem.load world.World.kernel.Kernel.mem ~size:8 ~addr:dst ~context:"t")

let test_probe_read_str () =
  let world, hctx = fresh () in
  let dst = stack_buf world 16 and src = stack_buf world 16 in
  Kmem.store_bytes world.World.kernel.Kernel.mem ~addr:src
    ~src:(Bytes.of_string "hi\000") ~context:"t";
  Alcotest.check t64 "len incl NUL" 3L
    (Helpers.Helpers_probe.probe_read_kernel_str hctx [| dst; 16L; src; 0L; 0L |])

(* ---------------- loop/tail call ---------------- *)

let test_bpf_loop_iterations () =
  let _, hctx = fresh () in
  let seen = ref [] in
  hctx.Hctx.call_subprog <-
    Some (fun _pc args ->
        seen := args.(0) :: !seen;
        0L);
  let ret = Helpers.Helpers_loop.loop hctx [| 5L; 0L; 7L; 0L; 0L |] in
  Alcotest.check t64 "five iterations" 5L ret;
  Alcotest.(check int) "callback saw indices" 5 (List.length !seen)

let test_bpf_loop_early_stop () =
  let _, hctx = fresh () in
  hctx.Hctx.call_subprog <-
    Some (fun _pc args -> if Int64.equal args.(0) 2L then 1L else 0L);
  let ret = Helpers.Helpers_loop.loop hctx [| 100L; 0L; 0L; 0L; 0L |] in
  Alcotest.check t64 "stopped at 3rd iteration" 3L ret

let test_bpf_loop_cap () =
  let _, hctx = fresh () in
  hctx.Hctx.call_subprog <- Some (fun _ _ -> 0L);
  let ret = Helpers.Helpers_loop.loop hctx [| Int64.of_int ((1 lsl 23) + 1); 0L; 0L; 0L; 0L |] in
  Alcotest.(check bool) "over-cap rejected" true (Int64.compare ret 0L < 0)

let test_tail_call () =
  let _, hctx = fresh () in
  Hashtbl.replace hctx.Hctx.prog_array 3 42;
  (match Helpers.Helpers_loop.tail_call hctx [| 0L; 0L; 3L; 0L; 0L |] with
  | exception Hctx.Tail_call 42 -> ()
  | _ -> Alcotest.fail "expected tail call");
  Alcotest.check t64 "missing index = -ENOENT" (-2L)
    (Helpers.Helpers_loop.tail_call hctx [| 0L; 0L; 9L; 0L; 0L |])

(* ---------------- sys_bpf ---------------- *)

let test_sys_bpf_map_create () =
  let world, hctx = fresh () in
  let attr = stack_buf world 24 in
  let mem = world.World.kernel.Kernel.mem in
  Kmem.store mem ~size:4 ~addr:(Int64.add attr 4L) ~value:4L ~context:"t";
  Kmem.store mem ~size:4 ~addr:(Int64.add attr 8L) ~value:8L ~context:"t";
  Kmem.store mem ~size:4 ~addr:(Int64.add attr 12L) ~value:16L ~context:"t";
  let fd = Helpers.Helpers_sys.sys_bpf hctx [| 0L; attr; 16L; 0L; 0L |] in
  Alcotest.(check bool) "map created" true (Int64.compare fd 0L > 0);
  Alcotest.(check bool) "registered" true
    (Bpf_map.Registry.find world.World.maps (Int64.to_int fd) <> None)

let test_sys_bpf_prog_load_denied () =
  let world, hctx = fresh () in
  let attr = stack_buf world 24 in
  Alcotest.check t64 "prog_load -EPERM" (-1L)
    (Helpers.Helpers_sys.sys_bpf hctx [| 5L; attr; 24L; 0L; 0L |]);
  ignore world

(* ---------------- misc ---------------- *)

let test_ktime_advances () =
  let world, hctx = fresh () in
  let a = Helpers.Helpers_misc.ktime_get_ns hctx [||] in
  Kernel_sim.Vclock.advance world.World.kernel.Kernel.clock 100L;
  let b = Helpers.Helpers_misc.ktime_get_ns hctx [||] in
  Alcotest.(check bool) "time moved" true (Int64.compare b a > 0)

let test_prandom_deterministic () =
  let _, h1 = fresh () in
  let _, h2 = fresh () in
  let seq h = List.init 5 (fun _ -> Helpers.Helpers_misc.get_prandom_u32 h [||]) in
  Alcotest.(check bool) "same seed, same sequence" true (seq h1 = seq h2)

let test_trace_printk () =
  let world, hctx = fresh () in
  let fmt = stack_buf world 32 in
  Kmem.store_bytes world.World.kernel.Kernel.mem ~addr:fmt
    ~src:(Bytes.of_string "pid=%d\000") ~context:"t";
  ignore (Helpers.Helpers_misc.trace_printk hctx [| fmt; 8L; 55L; 0L; 0L |]);
  Alcotest.(check (list string)) "trace recorded" [ "pid=55" ] (Hctx.trace_output hctx)

(* ---------------- resources ---------------- *)

let test_resources_lifo_cleanup () =
  let order = ref [] in
  let r = Resources.create () in
  let _ = Resources.acquire r ~key:1L ~desc:"a" ~destroy:(fun () -> order := "a" :: !order) in
  let _ = Resources.acquire r ~key:2L ~desc:"b" ~destroy:(fun () -> order := "b" :: !order) in
  let cleaned = Resources.cleanup r in
  Alcotest.(check int) "two cleaned" 2 cleaned;
  (* LIFO: b (newest) runs first, so "a" ends up at the list head *)
  Alcotest.(check (list string)) "LIFO order" [ "a"; "b" ] !order

let test_resources_release_by_key () =
  let r = Resources.create () in
  let ran = ref false in
  let _ = Resources.acquire r ~key:7L ~desc:"x" ~destroy:(fun () -> ran := true) in
  Alcotest.(check bool) "release runs destructor" true (Resources.release_by_key r 7L);
  Alcotest.(check bool) "destructor ran" true !ran;
  Alcotest.(check bool) "gone" false (Resources.release_by_key r 7L);
  Alcotest.(check int) "nothing left" 0 (Resources.cleanup r)

let test_resources_forget () =
  let r = Resources.create () in
  let ran = ref false in
  let _ = Resources.acquire r ~key:7L ~desc:"x" ~destroy:(fun () -> ran := true) in
  Alcotest.(check bool) "forget" true (Resources.forget_by_key r 7L);
  Alcotest.(check bool) "destructor did not run" false !ran

let suite =
  [
    Alcotest.test_case "registry integrity" `Quick test_registry_integrity;
    Alcotest.test_case "registry versions monotone" `Quick test_registry_versions_monotone;
    Alcotest.test_case "bugdb windows" `Quick test_bugdb_window;
    Alcotest.test_case "bugdb force" `Quick test_bugdb_force;
    Alcotest.test_case "map helpers roundtrip" `Quick test_map_helpers_roundtrip;
    Alcotest.test_case "map helper miss" `Quick test_map_helper_miss;
    Alcotest.test_case "for_each_map_elem" `Quick test_for_each_map_elem;
    Alcotest.test_case "pid_tgid" `Quick test_pid_tgid;
    Alcotest.test_case "current comm" `Quick test_current_comm;
    Alcotest.test_case "task storage roundtrip" `Quick test_task_storage_roundtrip;
    Alcotest.test_case "get_task_stack fixed" `Quick test_get_task_stack_fixed_no_leak;
    Alcotest.test_case "get_task_stack buggy leaks" `Quick test_get_task_stack_buggy_leaks;
    Alcotest.test_case "sk lookup/release" `Quick test_sk_lookup_release;
    Alcotest.test_case "sk lookup miss" `Quick test_sk_lookup_miss;
    Alcotest.test_case "strtol" `Quick test_strtol;
    Alcotest.test_case "strtoul rejects negative" `Quick test_strtoul_rejects_negative;
    Alcotest.test_case "strncmp" `Quick test_strncmp;
    Alcotest.test_case "snprintf" `Quick test_snprintf;
    Alcotest.test_case "probe_read efault" `Quick test_probe_read_efault;
    Alcotest.test_case "probe_read ok" `Quick test_probe_read_ok;
    Alcotest.test_case "probe_read_str" `Quick test_probe_read_str;
    Alcotest.test_case "bpf_loop iterations" `Quick test_bpf_loop_iterations;
    Alcotest.test_case "bpf_loop early stop" `Quick test_bpf_loop_early_stop;
    Alcotest.test_case "bpf_loop cap" `Quick test_bpf_loop_cap;
    Alcotest.test_case "tail call" `Quick test_tail_call;
    Alcotest.test_case "sys_bpf map create" `Quick test_sys_bpf_map_create;
    Alcotest.test_case "sys_bpf prog_load denied" `Quick test_sys_bpf_prog_load_denied;
    Alcotest.test_case "ktime advances" `Quick test_ktime_advances;
    Alcotest.test_case "prandom deterministic" `Quick test_prandom_deterministic;
    Alcotest.test_case "trace_printk" `Quick test_trace_printk;
    Alcotest.test_case "resources LIFO cleanup" `Quick test_resources_lifo_cleanup;
    Alcotest.test_case "resources release by key" `Quick test_resources_release_by_key;
    Alcotest.test_case "resources forget" `Quick test_resources_forget;
  ]
