test/test_rustlite.ml: Alcotest Bytes Format Framework Int64 Kernel_sim List Maps Option QCheck QCheck_alcotest Runtime Rustlite String Untenable
