test/test_verifier.ml: Alcotest Bpf_verifier Ebpf Format Framework Helpers Kerndata Kernel_sim List Maps Printf QCheck QCheck_alcotest String Untenable
