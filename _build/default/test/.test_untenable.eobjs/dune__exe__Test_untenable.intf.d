test/test_untenable.mli:
