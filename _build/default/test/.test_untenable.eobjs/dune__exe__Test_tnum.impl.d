test/test_tnum.ml: Alcotest Format Int64 List Option Printf QCheck QCheck_alcotest String Tnum Untenable
