test/test_data.ml: Alcotest Array Callgraph Float Helpers Kerndata Lazy List Printf Untenable
