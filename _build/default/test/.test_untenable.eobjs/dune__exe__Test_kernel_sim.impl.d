test/test_kernel_sim.ml: Alcotest Bytes Format Int64 Kernel_sim List Option Printf Untenable
