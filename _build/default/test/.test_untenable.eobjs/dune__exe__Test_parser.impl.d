test/test_parser.ml: Alcotest Format Framework Int64 Kernel_sim List QCheck QCheck_alcotest Result Rustlite String Untenable
