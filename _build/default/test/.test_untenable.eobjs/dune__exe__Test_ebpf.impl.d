test/test_ebpf.ml: Alcotest Array Asm Bytes Cfg Disasm Ebpf Encode Format Insn Int64 List Printf Program QCheck QCheck_alcotest String Untenable
