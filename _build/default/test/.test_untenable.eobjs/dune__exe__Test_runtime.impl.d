test/test_runtime.ml: Alcotest Bpf_verifier Ebpf Format Framework Helpers Int64 Kernel_sim List QCheck QCheck_alcotest Runtime Untenable
