test/test_helpers.ml: Alcotest Array Bytes Format Framework Hashtbl Helpers Int64 Kerndata Kernel_sim List Maps String Untenable
