test/test_maps.ml: Alcotest Bytes Format Hashtbl Int32 Int64 Kernel_sim List Maps Option Printf QCheck QCheck_alcotest String Untenable
