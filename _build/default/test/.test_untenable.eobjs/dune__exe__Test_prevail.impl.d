test/test_prevail.ml: Alcotest Bpf_verifier Ebpf Format Helpers List Maps Printf QCheck QCheck_alcotest String Untenable
