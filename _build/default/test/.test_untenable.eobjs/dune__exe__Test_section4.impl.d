test/test_section4.ml: Alcotest Format Framework Int64 Kernel_sim List Runtime Rustlite Untenable
