test/test_integration.ml: Alcotest Bpf_verifier Bytes Ebpf Format Framework Helpers Int64 Kernel_sim List Maps Option Result Rustlite Untenable
