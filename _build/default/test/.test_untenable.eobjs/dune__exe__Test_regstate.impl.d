test/test_regstate.ml: Bpf_verifier Ebpf Format Insn Int64 List QCheck QCheck_alcotest Tnum Untenable
