test/test_framework.ml: Alcotest Bytes Ebpf Format Framework Helpers Kerndata Kernel_sim List Maps Printf Result Rustlite String Untenable
