(* Property tests for the verifier's register abstraction — the code the
   historical CVEs lived in.  Every scalar transfer function, the branch
   refinement, and the AI join/widen must *contain* the concrete semantics:
   if a concrete value is a member of the input state, the concrete result
   must be a member of the output state. *)

open Untenable
module R = Bpf_verifier.Reg_state
module V = Bpf_verifier.Verifier
open Ebpf

(* membership: the concrete word is allowed by tnum AND all four bounds *)
let mem (r : R.t) (v : int64) =
  R.is_scalar r
  && Tnum.contains r.R.var_off v
  && Int64.unsigned_compare r.R.umin v <= 0
  && Int64.unsigned_compare v r.R.umax <= 0
  && Int64.compare r.R.smin v <= 0
  && Int64.compare v r.R.smax <= 0

(* a random scalar reg together with a member of it: bounds are the loosest
   consistent with a random tnum, then tightened through bounds_sync *)
let gen_reg_with_member =
  QCheck.Gen.(
    let* value = ui64 in
    let* mask = ui64 in
    let value = Int64.logand value (Int64.lognot mask) in
    let* noise = ui64 in
    let member = Int64.logor value (Int64.logand noise mask) in
    let t = Tnum.make ~value ~mask in
    let reg =
      R.bounds_sync
        { R.unknown_scalar with R.var_off = t; umin = Tnum.umin t; umax = Tnum.umax t }
    in
    return (reg, member))

let arb_reg_member =
  QCheck.make
    ~print:(fun (r, m) -> Format.asprintf "%a ∋ %Lx" R.pp r m)
    gen_reg_with_member

let sound2 name abstract concrete =
  QCheck.Test.make ~count:1000 ~name:("transfer soundness: " ^ name)
    (QCheck.pair arb_reg_member arb_reg_member)
    (fun ((ra, a), (rb, b)) -> mem (abstract ra rb) (concrete a b))

let transfer_properties =
  [
    sound2 "add" R.scalar_add Int64.add;
    sound2 "sub" R.scalar_sub Int64.sub;
    sound2 "mul" R.scalar_mul Int64.mul;
    sound2 "and" R.scalar_and Int64.logand;
    sound2 "or" R.scalar_or Int64.logor;
    sound2 "xor" R.scalar_xor Int64.logxor;
    QCheck.Test.make ~count:1000 ~name:"transfer soundness: shifts"
      (QCheck.pair arb_reg_member (QCheck.int_bound 63))
      (fun ((ra, a), sh) ->
        mem (R.scalar_shift_const `Lsh ra sh) (Int64.shift_left a sh)
        && mem (R.scalar_shift_const `Rsh ra sh) (Int64.shift_right_logical a sh)
        && mem (R.scalar_shift_const `Arsh ra sh) (Int64.shift_right a sh));
    QCheck.Test.make ~count:1000 ~name:"transfer soundness: div by const"
      (QCheck.pair arb_reg_member QCheck.(map Int64.of_int (int_range 1 1000)))
      (fun ((ra, a), c) -> mem (R.scalar_div_const ra c) (Int64.unsigned_div a c));
    QCheck.Test.make ~count:1000 ~name:"transfer soundness: zext32"
      arb_reg_member
      (fun (ra, a) -> mem (R.zext32 ra) (Int64.logand a 0xffff_ffffL));
  ]

(* branch refinement: if the branch outcome for the concrete member is
   [taken], the member survives the [taken]-side refinement *)
let concrete_taken (cond : Insn.cond) d c =
  match cond with
  | Insn.Eq -> Int64.equal d c
  | Insn.Ne -> not (Int64.equal d c)
  | Insn.Gt -> Int64.unsigned_compare d c > 0
  | Insn.Ge -> Int64.unsigned_compare d c >= 0
  | Insn.Lt -> Int64.unsigned_compare d c < 0
  | Insn.Le -> Int64.unsigned_compare d c <= 0
  | Insn.Set -> not (Int64.equal (Int64.logand d c) 0L)
  | Insn.Sgt -> Int64.compare d c > 0
  | Insn.Sge -> Int64.compare d c >= 0
  | Insn.Slt -> Int64.compare d c < 0
  | Insn.Sle -> Int64.compare d c <= 0

let all_conds =
  [ Insn.Eq; Insn.Ne; Insn.Gt; Insn.Ge; Insn.Lt; Insn.Le; Insn.Set; Insn.Sgt;
    Insn.Sge; Insn.Slt; Insn.Sle ]

let refinement_sound =
  QCheck.Test.make ~count:2000 ~name:"branch refinement soundness"
    (QCheck.triple arb_reg_member (QCheck.oneofl all_conds)
       QCheck.(map Int64.of_int (int_range (-2000) 2000)))
    (fun ((r, v), cond, c) ->
      let taken = concrete_taken cond v c in
      mem (V.refine_against_const cond r c ~taken) v)

let branch_decidability_sound =
  QCheck.Test.make ~count:2000 ~name:"is_branch_taken never lies"
    (QCheck.triple arb_reg_member (QCheck.oneofl all_conds)
       QCheck.(map Int64.of_int (int_range (-2000) 2000)))
    (fun ((r, v), cond, c) ->
      match V.branch_taken cond r c with
      | None -> true
      | Some decided -> decided = concrete_taken cond v c)

(* join/widen: members of either side are members of the join; members of
   the next iterate are members of the widened state *)
let join_sound =
  QCheck.Test.make ~count:1000 ~name:"join soundness"
    (QCheck.pair arb_reg_member arb_reg_member)
    (fun ((ra, a), (rb, b)) ->
      let j = R.join ra rb in
      mem j a && mem j b)

let widen_sound =
  QCheck.Test.make ~count:1000 ~name:"widen soundness"
    (QCheck.pair arb_reg_member arb_reg_member)
    (fun ((prev, _), (next, b)) -> mem (R.widen ~prev next) b)

(* bounds_sync must never *remove* members, only tighten around them *)
let bounds_sync_sound =
  QCheck.Test.make ~count:1000 ~name:"bounds_sync keeps members"
    arb_reg_member
    (fun (r, v) -> mem (R.bounds_sync r) v)

let suite =
  List.map QCheck_alcotest.to_alcotest
    (transfer_properties
    @ [ refinement_sound; branch_decidability_sound; join_sound; widen_sound;
        bounds_sync_sound ])
