examples/helper_audit.mli:
