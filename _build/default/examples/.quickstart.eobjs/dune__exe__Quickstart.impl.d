examples/quickstart.ml: Bpf_verifier Ebpf Format Framework Helpers Kernel_sim List Maps Printf Rustlite String Untenable
