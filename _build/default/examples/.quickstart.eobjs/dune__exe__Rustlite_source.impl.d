examples/rustlite_source.ml: Format Framework Int64 Kernel_sim List Maps Printf Rustlite Untenable
