examples/helper_audit.ml: Callgraph Helpers Kerndata List Printf String Untenable
