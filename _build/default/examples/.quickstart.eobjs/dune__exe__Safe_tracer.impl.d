examples/safe_tracer.ml: Bytes Format Framework Int64 Kernel_sim List Maps Option Printf Rustlite String Untenable
