examples/safe_tracer.mli:
