examples/quickstart.mli:
