examples/rustlite_source.mli:
