examples/packet_filter.ml: Bpf_verifier Bytes Char Ebpf Format Framework Helpers Int64 List Printf Rustlite Untenable
